"""Incremental supergraph construction.

The basic algorithm of :mod:`repro.core.construction` assumes that the
initiator first collects *all* fragments from the community and only then
starts colouring.  The paper extends the algorithm by relaxing that
assumption: because the colouring of nodes requires only local knowledge,
the supergraph can be built incrementally, drawing from the community only
the fragments needed to extend the graph along the boundaries of the
coloured region.

:class:`IncrementalConstructor` implements that variant against an abstract
:class:`FragmentSource`.  A fragment source may be a local knowledge set
(used in tests and ablations) or a remote community reached through the
discovery protocol (see :mod:`repro.discovery.knowhow`), in which case every
query translates into network messages.  The constructor keeps statistics on
how many queries were issued and how many fragments were actually
transferred, which the ablation benchmarks compare against the
collect-everything baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from .construction import ConstructionResult
from .fragments import KnowledgeSet, WorkflowFragment
from .solver import Solver, make_solver
from .specification import Specification
from .supergraph import Supergraph


def compute_frontier_labels(
    graph: Supergraph,
    specification: Specification,
    result: ConstructionResult,
) -> set[str]:
    """Labels along the boundary of the coloured region.

    The forward frontier consists of every green label (its consumers may be
    missing locally); the backward frontier consists of goal labels and of
    inputs of locally-known tasks that are not yet green (their producers may
    be missing locally).  The distributed incremental mode of the workflow
    manager uses the same computation to decide which labels to query the
    community about next.
    """

    from .construction import Color  # local import to avoid cycle at module load

    frontier: set[str] = set(specification.goals)
    green_labels = {
        node.name
        for node, color in result.state.colors.items()
        if node.is_label and color in (Color.GREEN, Color.BLUE, Color.PURPLE)
    }
    frontier |= green_labels
    for task in graph.tasks.values():
        for inp in task.inputs:
            if inp not in green_labels:
                frontier.add(inp)
    return frontier


class FragmentSource(Protocol):
    """Where the incremental constructor pulls know-how from.

    Implementations answer two kinds of queries, mirroring the discovery
    protocol: fragments containing a task that *consumes* a label (used to
    push the coloured frontier forward from the triggers) and fragments
    containing a task that *produces* a label (used to seed the search
    around the goals).  ``exclude`` carries the ids of fragments already
    held locally so they are not transferred twice.
    """

    def fragments_consuming(
        self, label: str, exclude: frozenset[str]
    ) -> list[WorkflowFragment]:
        """Fragments with a task taking ``label`` as an input."""
        ...

    def fragments_producing(
        self, label: str, exclude: frozenset[str]
    ) -> list[WorkflowFragment]:
        """Fragments with a task producing ``label``."""
        ...


class LocalFragmentSource:
    """A :class:`FragmentSource` backed by an in-memory knowledge set."""

    def __init__(self, knowledge: KnowledgeSet | Iterable[WorkflowFragment]) -> None:
        if not isinstance(knowledge, KnowledgeSet):
            knowledge = KnowledgeSet(knowledge)
        self._knowledge = knowledge
        self.query_count = 0
        self.fragments_served = 0

    def fragments_consuming(
        self, label: str, exclude: frozenset[str]
    ) -> list[WorkflowFragment]:
        self.query_count += 1
        found = [
            f
            for f in self._knowledge.fragments_consuming(label)
            if f.fragment_id not in exclude
        ]
        self.fragments_served += len(found)
        return found

    def fragments_producing(
        self, label: str, exclude: frozenset[str]
    ) -> list[WorkflowFragment]:
        self.query_count += 1
        found = [
            f
            for f in self._knowledge.fragments_producing(label)
            if f.fragment_id not in exclude
        ]
        self.fragments_served += len(found)
        return found


@dataclass
class IncrementalStatistics:
    """Bookkeeping for one incremental construction run."""

    rounds: int = 0
    queries_issued: int = 0
    fragments_transferred: int = 0
    labels_queried: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "queries_issued": self.queries_issued,
            "fragments_transferred": self.fragments_transferred,
            "labels_queried": self.labels_queried,
        }


@dataclass
class IncrementalConstructionResult:
    """Result of an incremental construction run.

    Wraps the final :class:`~repro.core.construction.ConstructionResult`
    together with the incremental-specific statistics and the supergraph as
    it stood when construction finished (useful for reuse across multiple
    specifications by the workflow manager's workspaces).
    """

    construction: ConstructionResult
    supergraph: Supergraph
    incremental: IncrementalStatistics = field(default_factory=IncrementalStatistics)

    @property
    def succeeded(self) -> bool:
        return self.construction.succeeded

    @property
    def workflow(self):
        return self.construction.workflow

    def require_workflow(self):
        return self.construction.require_workflow()


class IncrementalConstructor:
    """Builds the supergraph lazily while colouring it.

    Parameters
    ----------
    source:
        Where fragments are pulled from.
    seed_with_goal_producers:
        When true (default) the constructor starts by asking for fragments
        that can produce each goal label, guaranteeing that a goal reachable
        in a single backwards step is found even when the forward frontier
        has not been expanded yet.
    max_rounds:
        Safety bound on the number of frontier-expansion rounds; the
        default is generous enough for any realistic community.
    solver:
        Construction strategy used for the per-round colouring (a
        :class:`~repro.core.solver.Solver`, a registry name, or ``None``
        for the default memoized solver).  With the memoized solver each
        round after the first recolors only the fragments pulled in that
        round instead of the whole accumulated graph.
    """

    def __init__(
        self,
        source: FragmentSource,
        seed_with_goal_producers: bool = True,
        max_rounds: int = 10_000,
        stop_exploration_early: bool = True,
        solver: Solver | str | None = None,
    ) -> None:
        self._source = source
        self._seed_with_goal_producers = seed_with_goal_producers
        self._max_rounds = max_rounds
        self._solver = make_solver(
            solver, stop_exploration_early=stop_exploration_early
        )

    def construct(
        self,
        specification: Specification,
        initial_fragments: Iterable[WorkflowFragment] = (),
        supergraph: Supergraph | None = None,
    ) -> IncrementalConstructionResult:
        """Run incremental construction for ``specification``.

        ``initial_fragments`` model the know-how already held by the
        initiating host; ``supergraph`` lets a workflow manager workspace
        reuse the graph accumulated by earlier problems.
        """

        graph = supergraph if supergraph is not None else Supergraph()
        for fragment in initial_fragments:
            graph.add_fragment(fragment)
        stats = IncrementalStatistics()
        queried_forward: set[str] = set()
        queried_backward: set[str] = set()

        if self._seed_with_goal_producers:
            for goal in sorted(specification.goals):
                self._pull_producing(graph, goal, queried_backward, stats)

        result = self._solver.solve(graph, specification)
        while not result.succeeded and stats.rounds < self._max_rounds:
            stats.rounds += 1
            frontier = self._frontier_labels(graph, specification, result)
            new_fragments = 0
            for label in sorted(frontier):
                if label not in queried_forward:
                    new_fragments += self._pull_consuming(
                        graph, label, queried_forward, stats
                    )
                if label not in queried_backward:
                    new_fragments += self._pull_producing(
                        graph, label, queried_backward, stats
                    )
            if new_fragments == 0:
                break
            result = self._solver.solve(graph, specification)

        return IncrementalConstructionResult(result, graph, stats)

    # -- frontier computation ------------------------------------------------
    def _frontier_labels(
        self,
        graph: Supergraph,
        specification: Specification,
        result: ConstructionResult,
    ) -> set[str]:
        return compute_frontier_labels(graph, specification, result)

    # -- query helpers -----------------------------------------------------------
    def _pull_consuming(
        self,
        graph: Supergraph,
        label: str,
        queried: set[str],
        stats: IncrementalStatistics,
    ) -> int:
        queried.add(label)
        stats.queries_issued += 1
        stats.labels_queried += 1
        fragments = self._source.fragments_consuming(label, graph.fragment_ids)
        added = 0
        for fragment in fragments:
            if graph.add_fragment(fragment):
                added += 1
                stats.fragments_transferred += 1
        return added

    def _pull_producing(
        self,
        graph: Supergraph,
        label: str,
        queried: set[str],
        stats: IncrementalStatistics,
    ) -> int:
        queried.add(label)
        stats.queries_issued += 1
        stats.labels_queried += 1
        fragments = self._source.fragments_producing(label, graph.fragment_ids)
        added = 0
        for fragment in fragments:
            if graph.add_fragment(fragment):
                added += 1
                stats.fragments_transferred += 1
        return added


def construct_incrementally(
    knowledge: KnowledgeSet | Iterable[WorkflowFragment],
    specification: Specification,
    initial_fragments: Iterable[WorkflowFragment] = (),
) -> IncrementalConstructionResult:
    """Run incremental construction against an in-memory knowledge set."""

    source = LocalFragmentSource(knowledge)
    constructor = IncrementalConstructor(source)
    return constructor.construct(specification, initial_fragments=initial_fragments)
