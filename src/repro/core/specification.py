"""Problem specifications.

A workflow is constructed in response to an expressed need, stated as a
specification ``S``: a predicate over the inset and outset of a workflow
(paper, Section 2.2):

    S ∈ P(Labels) × P(Labels) → Boolean

The construction algorithm of Section 3.1 uses the particular form

    W.in ⊆ ι  ∧  W.out = ω

where ι is the set of triggering-condition labels and ω is the goal set.
:class:`Specification` implements that form; :class:`PredicateSpecification`
supports arbitrary predicates for callers that want to experiment with the
richer specifications discussed in the paper's future-work section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from .errors import SpecificationError
from .labels import as_label_names


@dataclass(frozen=True)
class Specification:
    """The canonical trigger/goal specification ``W.in ⊆ ι ∧ W.out = ω``.

    Parameters
    ----------
    triggers:
        ι — labels describing the conditions that currently hold (the
        triggering conditions).  The constructed workflow may only require
        inputs drawn from this set.
    goals:
        ω — labels describing the desired outcome.  The constructed
        workflow's outset must equal this set exactly.
    name:
        Optional human readable name for the problem (used in logs and the
        workspace bookkeeping of the workflow manager).
    """

    triggers: frozenset[str]
    goals: frozenset[str]
    name: str = field(default="problem", compare=False)

    def __init__(
        self,
        triggers: Iterable[str],
        goals: Iterable[str],
        name: str = "problem",
    ) -> None:
        trigger_names = as_label_names(triggers)
        goal_names = as_label_names(goals)
        if not goal_names:
            raise SpecificationError("a specification requires at least one goal label")
        object.__setattr__(self, "triggers", trigger_names)
        object.__setattr__(self, "goals", goal_names)
        object.__setattr__(self, "name", name)

    def __call__(self, inset: Iterable[str], outset: Iterable[str]) -> bool:
        """Evaluate the predicate ``S(W.in, W.out)``."""

        inset_names = as_label_names(inset)
        outset_names = as_label_names(outset)
        return inset_names <= self.triggers and outset_names == self.goals

    # -- convenience -------------------------------------------------------
    @property
    def iota(self) -> frozenset[str]:
        """Alias for :attr:`triggers`, matching the paper's ι."""

        return self.triggers

    @property
    def omega(self) -> frozenset[str]:
        """Alias for :attr:`goals`, matching the paper's ω."""

        return self.goals

    def is_trivially_satisfied(self) -> bool:
        """True when the goals are already among the triggering conditions.

        In that degenerate case the empty workflow (no tasks) technically
        cannot satisfy ``W.out = ω`` unless the goal labels are carried as
        free labels, but no *work* is required; callers may use this to
        short-circuit construction.
        """

        return self.goals <= self.triggers

    def __repr__(self) -> str:
        return (
            f"Specification(name={self.name!r}, triggers={sorted(self.triggers)}, "
            f"goals={sorted(self.goals)})"
        )


@dataclass(frozen=True)
class PredicateSpecification:
    """A fully general specification backed by an arbitrary predicate.

    The paper's formal model allows any predicate over (inset, outset); the
    construction algorithm however targets the trigger/goal form.  This class
    is provided for validation and for future richer planners: it can wrap a
    Python callable and, optionally, a :class:`Specification` whose triggers
    and goals guide construction while the predicate provides the final
    acceptance check.
    """

    predicate: Callable[[frozenset[str], frozenset[str]], bool]
    guide: Specification | None = None
    name: str = "predicate-problem"

    def __call__(self, inset: Iterable[str], outset: Iterable[str]) -> bool:
        return bool(
            self.predicate(as_label_names(inset), as_label_names(outset))
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PredicateSpecification(name={self.name!r})"


def specification(
    triggers: Iterable[str], goals: Iterable[str], name: str = "problem"
) -> Specification:
    """Shorthand constructor used throughout examples and tests."""

    return Specification(triggers, goals, name=name)
