"""Exception hierarchy for the open workflow library.

All exceptions raised by :mod:`repro` derive from :class:`OpenWorkflowError`
so callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class OpenWorkflowError(Exception):
    """Base class for all errors raised by the open workflow library."""


class InvalidWorkflowError(OpenWorkflowError):
    """A graph violates one of the structural rules of a valid workflow.

    The paper (Section 2.2) requires that (1) all sources and sinks are
    labels, (2) a label has at most one incoming edge, and (3) there are no
    duplicate nodes.  The graph must also be a bipartite DAG.
    """


class InvalidFragmentError(InvalidWorkflowError):
    """A workflow fragment is structurally invalid."""


class CompositionError(OpenWorkflowError):
    """Two workflows cannot be composed into a valid workflow."""


class PruningError(OpenWorkflowError):
    """A pruning request violates the pruning constraints of Section 2.2."""


class ConstructionError(OpenWorkflowError):
    """The construction algorithm could not run on the given inputs."""


class UnsatisfiableSpecificationError(ConstructionError):
    """No feasible workflow exists for the specification and knowledge set.

    Raised by the construction front-ends that promise a workflow; the lower
    level :func:`repro.core.construction.construct_workflow` reports failure
    through :class:`ConstructionResult` instead of raising.
    """


class SpecificationError(OpenWorkflowError):
    """A problem specification is malformed (e.g. empty goal set)."""


class AllocationError(OpenWorkflowError):
    """Task allocation failed."""


class NoBidsError(AllocationError):
    """No participant submitted a bid for a task, so it cannot be allocated."""


class SchedulingError(OpenWorkflowError):
    """A commitment cannot be added to a schedule."""


class ScheduleConflictError(SchedulingError):
    """A commitment overlaps an existing commitment (including travel time)."""


class ExecutionError(OpenWorkflowError):
    """A service invocation or the execution phase failed."""


class ServiceNotFoundError(ExecutionError):
    """A host was asked to execute a service it does not provide."""


class CommunicationError(OpenWorkflowError):
    """A message could not be delivered by the communications layer."""


class HostUnreachableError(CommunicationError):
    """The destination host is not reachable from the sender."""


class ConfigurationError(OpenWorkflowError):
    """A device configuration file (XML) is malformed."""
