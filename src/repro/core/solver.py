"""Pluggable solver strategies for open workflow construction.

The paper's Algorithm 1 is one way to turn (supergraph, specification) into
a workflow; the baselines implement others (forward chaining, a statically
specified graph).  This module extracts that choice into a :class:`Solver`
strategy interface so the workflow manager, the facade, the baselines and
the benchmarks all go through one API and ablations compare *strategies*
rather than code paths.

Two implementations live here:

* :class:`ColoringSolver` — the paper's behaviour: a fresh green/purple/blue
  colouring of the whole supergraph on every solve.
* :class:`MemoizedColoringSolver` — an incremental engine that memoizes the
  exploration (green) state per ``(supergraph, specification, filter)`` and,
  when the graph has grown since the cached colouring, recolors only the
  dirty region reported by :meth:`Supergraph.dirty_since` instead of the
  whole graph.  Re-solving an unchanged graph is a pure cache hit (zero
  colouring work); re-solving after a fragment arrival costs work
  proportional to the arrival's footprint, not the graph size.

Why incremental recolouring is sound: supergraph mutation is *monotone*.
Tasks are immutable once merged (conflicting redefinitions raise), so a
conjunctive node's parent set never changes after it is coloured; labels are
disjunctive, so gaining a producer can only (re)confirm green.  A node
coloured green therefore remains validly green forever, and only the dirty
nodes — plus whatever their colouring newly unlocks, which worklist
propagation discovers — can change colour.  The resulting workflow is
*equivalent* to a from-scratch solve on the final graph: same feasibility
verdict, and on success a valid workflow satisfying the specification
(distances inside the green region may differ from a from-scratch run, so
the tie-breaks of the pruning phase may select a different — equally valid —
alternative among redundant producers).

The pruning (purple/blue) phase always runs on a throwaway copy of the
cached exploration state: it is goal-directed and proportional to the size
of the extracted workflow, which is the cheap part of a solve.

:func:`make_solver` resolves a configuration value (a name, ``None``, or an
existing instance) into a solver, which is what the ``solver=`` hooks on
:class:`~repro.host.workflow_manager.WorkflowManager`,
:class:`~repro.host.host.Host`, :class:`~repro.host.community.Community`
and :class:`~repro.owms.system.OpenWorkflowSystem` accept.
"""

from __future__ import annotations

import abc
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from .construction import (
    ColoringState,
    ConstructionResult,
    ConstructionStatistics,
    WorkflowConstructor,
)
from .errors import ConfigurationError
from .specification import Specification
from .supergraph import Supergraph
from .tasks import Task

TaskFilter = Callable[[Task], bool]


class Solver(abc.ABC):
    """Strategy interface: turn (supergraph, specification) into a result.

    ``task_filter`` restricts construction to tasks the filter accepts
    (capability-aware construction, repair exclusions).  Because a filter is
    an opaque callable, memoizing solvers cannot key a cache on it directly;
    callers that want caching *with* a filter must pass ``filter_token``, a
    hashable value that changes whenever the filter's behaviour changes
    (e.g. the frozenset of available service types).  A filter without a
    token is solved from scratch.
    """

    name: str = "solver"

    #: Cumulative counters across every solve served by this instance.
    solve_count: int
    cache_hit_count: int
    cache_miss_count: int
    incremental_recolor_count: int
    nodes_recolored_total: int

    def __init__(self) -> None:
        self.solve_count = 0
        self.cache_hit_count = 0
        self.cache_miss_count = 0
        self.incremental_recolor_count = 0
        self.nodes_recolored_total = 0

    @abc.abstractmethod
    def solve(
        self,
        supergraph: Supergraph,
        specification: Specification,
        task_filter: TaskFilter | None = None,
        filter_token: Hashable | None = None,
    ) -> ConstructionResult:
        """Find one feasible workflow (or explain why none exists)."""

    def solve_many(
        self,
        supergraph: Supergraph,
        specifications: Iterable[Specification],
        task_filter: TaskFilter | None = None,
        filter_token: Hashable | None = None,
    ) -> list[ConstructionResult]:
        """Solve a batch of specifications against one supergraph.

        The default implementation simply loops; memoizing solvers benefit
        automatically because the batch shares the graph version.
        """

        return [
            self.solve(
                supergraph,
                specification,
                task_filter=task_filter,
                filter_token=filter_token,
            )
            for specification in specifications
        ]

    def invalidate(self) -> None:
        """Drop any cached state (no-op for stateless solvers)."""

    def statistics(self) -> dict[str, int]:
        """Cumulative solver-level counters (per-solve counters live on results)."""

        return {
            "solves": self.solve_count,
            "cache_hits": self.cache_hit_count,
            "cache_misses": self.cache_miss_count,
            "incremental_recolorings": self.incremental_recolor_count,
            "nodes_recolored_total": self.nodes_recolored_total,
        }

    def _record(self, result: ConstructionResult) -> ConstructionResult:
        result.statistics.solver = self.name
        self.solve_count += 1
        self.nodes_recolored_total += result.statistics.nodes_recolored
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}(solves={self.solve_count})"


class ColoringSolver(Solver):
    """The paper's Algorithm 1, run from scratch on every solve."""

    name = "coloring"

    def __init__(self, stop_exploration_early: bool = True) -> None:
        super().__init__()
        self.stop_exploration_early = stop_exploration_early
        self._constructor = WorkflowConstructor(
            stop_exploration_early=stop_exploration_early
        )

    def solve(
        self,
        supergraph: Supergraph,
        specification: Specification,
        task_filter: TaskFilter | None = None,
        filter_token: Hashable | None = None,
    ) -> ConstructionResult:
        result = self._constructor.construct(
            supergraph, specification, task_filter=task_filter
        )
        return self._record(result)


@dataclass
class _CacheEntry:
    """Memoized exploration state for one (graph, specification, filter).

    ``result``/``result_version`` additionally memoize the *finished*
    construction: pruning is deterministic given (graph version, spec,
    filter), so a re-solve at the very version the cached result was
    finalized at can replay it without copying the exploration state or
    pruning again — the repeat-workflow fast path of the shared knowledge
    plane.  ``hits`` counts how often the entry was served; eviction uses
    it to keep popular specifications resident (see
    :meth:`MemoizedColoringSolver._evict_one`).
    """

    version: int
    state: ColoringState
    reached: bool
    result: ConstructionResult | None = None
    result_version: int = -1
    hits: int = 0


class MemoizedColoringSolver(ColoringSolver):
    """Incremental colouring with per-(graph, spec, filter) memoization.

    The cache maps ``(graph_id, triggers, goals, filter_token)`` to the
    exploration state and the graph version it was computed at.  On a hit at
    the same version the green phase is skipped entirely; at a newer version
    only ``supergraph.dirty_since(cached_version)`` is re-seeded.

    The cache is bounded: once ``max_entries`` is exceeded, entries are
    evicted from the least-recently-used end, but with a *hit-rate-aware
    keep* — an LRU entry that has served at least ``popular_hit_threshold``
    hits is given a second chance (its hit count is halved and it rejoins
    the recently-used end) rather than being dropped, so the exploration
    state of popular specifications survives bursts of one-off solves.
    Demotion halves the count, so an entry that stops being asked for is
    evicted after O(log hits) spared rounds; ``eviction_count`` (exposed as
    ``"evictions"`` in :meth:`statistics`) reports how many entries were
    actually dropped.
    """

    name = "memoized"

    def __init__(
        self,
        stop_exploration_early: bool = True,
        max_entries: int = 256,
        popular_hit_threshold: int = 4,
    ) -> None:
        super().__init__(stop_exploration_early=stop_exploration_early)
        if max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        if popular_hit_threshold < 1:
            raise ConfigurationError("popular_hit_threshold must be at least 1")
        self.max_entries = max_entries
        self.popular_hit_threshold = popular_hit_threshold
        self.eviction_count = 0
        self._cache: OrderedDict[tuple, _CacheEntry] = OrderedDict()

    def invalidate(self) -> None:
        self._cache.clear()

    def cache_size(self) -> int:
        return len(self._cache)

    def statistics(self) -> dict[str, int]:
        stats = super().statistics()
        stats["evictions"] = self.eviction_count
        stats["cache_entries"] = len(self._cache)
        return stats

    def solve(
        self,
        supergraph: Supergraph,
        specification: Specification,
        task_filter: TaskFilter | None = None,
        filter_token: Hashable | None = None,
    ) -> ConstructionResult:
        if task_filter is not None and filter_token is None:
            # An opaque filter cannot be a cache key: fall back to scratch.
            self.cache_miss_count += 1
            result = super().solve(supergraph, specification, task_filter=task_filter)
            result.statistics.solver = self.name
            result.statistics.cache_misses = 1
            return result

        started = time.perf_counter()
        constructor = self._constructor
        # Trigger labels must exist before the version is snapshotted, so a
        # later re-solve of the same specification sees a clean version.
        for label in specification.triggers:
            supergraph.add_label(label)

        key = (
            supergraph.graph_id,
            specification.triggers,
            specification.goals,
            filter_token,
        )
        stats = constructor.begin_statistics(supergraph)
        entry = self._cache.get(key)
        if entry is None:
            state = ColoringState()
            reached = constructor.explore(
                supergraph, specification, state, stats, task_filter=task_filter
            )
            entry = _CacheEntry(supergraph.version, state, reached)
            self._store(key, entry)
            self.cache_miss_count += 1
            stats.cache_misses = 1
        else:
            self._cache.move_to_end(key)
            entry.hits += 1
            dirty = supergraph.dirty_since(entry.version)
            if dirty:
                entry.reached = constructor.resume_coloring(
                    supergraph,
                    specification,
                    entry.state,
                    stats,
                    dirty,
                    task_filter=task_filter,
                )
                # Advancing the version is correct even when no node was
                # visited: with early stopping, once every goal is green the
                # dirty region is intentionally left uncoloured — nothing a
                # new fragment adds can change the (already successful)
                # verdict, only offer alternative equally-valid workflows.
                entry.version = supergraph.version
                if stats.nodes_recolored or stats.exploration_iterations:
                    self.incremental_recolor_count += 1
            self.cache_hit_count += 1
            stats.cache_hits = 1
            if (
                entry.result is not None
                and entry.result_version == supergraph.version
            ):
                # Nothing changed since this exact construction was
                # finalized: replay it.  The workflow, coloring state, and
                # selected fragments are immutable (consumers only read the
                # state); only the statistics are rebuilt so the replay
                # reports zero colouring work and its own elapsed time.
                cached = entry.result
                stats.green_nodes = cached.statistics.green_nodes
                stats.blue_nodes = cached.statistics.blue_nodes
                stats.pruning_iterations = cached.statistics.pruning_iterations
                stats.fragments_selected = cached.statistics.fragments_selected
                stats.elapsed_seconds = time.perf_counter() - started
                return self._record(
                    ConstructionResult(
                        specification=cached.specification,
                        workflow=cached.workflow,
                        state=cached.state,
                        statistics=stats,
                        selected_fragment_ids=cached.selected_fragment_ids,
                        reason=cached.reason,
                    )
                )

        # Prune on a throwaway plain-dict copy so the memoized green state
        # survives.  The copy is O(green region), but at C speed; a
        # copy-on-write ChainMap overlay (O(workflow) writes, Python-level
        # reads) measured 4x slower end-to-end on the fig5 arrival benchmark
        # because pruning and finalization read far more than they write.
        prune_state = ColoringState(
            colors=dict(entry.state.colors),
            distances=dict(entry.state.distances),
        )
        result = constructor.finalize(
            supergraph, specification, prune_state, stats, entry.reached, started
        )
        entry.result = result
        entry.result_version = supergraph.version
        return self._record(result)

    def _store(self, key: tuple, entry: _CacheEntry) -> None:
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_entries:
            self._evict_one()

    def _evict_one(self) -> None:
        """Drop one entry: the least-recently-used *unpopular* one.

        Walks from the LRU end; entries with at least
        ``popular_hit_threshold`` recorded hits are demoted (hits halved)
        and re-queued at the recently-used end instead of dropped.  The
        walk is bounded by the cache size and demotion strictly shrinks hit
        counts, so it always terminates with an eviction.
        """

        for _ in range(len(self._cache)):
            key, entry = next(iter(self._cache.items()))
            if entry.hits >= self.popular_hit_threshold:
                entry.hits //= 2
                self._cache.move_to_end(key)
                continue
            del self._cache[key]
            self.eviction_count += 1
            return
        self._cache.popitem(last=False)  # pragma: no cover - defensive
        self.eviction_count += 1


#: Registry of named strategies accepted by ``solver=`` configuration hooks.
SOLVER_REGISTRY: dict[str, Callable[..., Solver]] = {
    "coloring": ColoringSolver,
    "scratch": ColoringSolver,
    "memoized": MemoizedColoringSolver,
    "incremental": MemoizedColoringSolver,
}

DEFAULT_SOLVER = "memoized"


def make_solver(
    solver: Solver | str | None = None,
    stop_exploration_early: bool = True,
) -> Solver:
    """Resolve a ``solver=`` configuration value into a :class:`Solver`.

    Accepts an existing instance (returned as-is), a registry name
    (``"coloring"``/``"scratch"``, ``"memoized"``/``"incremental"``), or
    ``None`` for the default (memoized) strategy.
    """

    if solver is None:
        solver = DEFAULT_SOLVER
    if isinstance(solver, Solver):
        return solver
    if isinstance(solver, str):
        factory = SOLVER_REGISTRY.get(solver)
        if factory is None:
            raise ConfigurationError(
                f"unknown solver {solver!r}; known: {sorted(SOLVER_REGISTRY)}"
            )
        return factory(stop_exploration_early=stop_exploration_early)
    raise ConfigurationError(
        f"solver must be a Solver instance, a name, or None; got {solver!r}"
    )


def results_equivalent(
    a: ConstructionResult, b: ConstructionResult
) -> bool:
    """Solver-level equivalence of two construction results.

    Two strategies (or one strategy run incrementally vs from scratch) are
    equivalent on a problem when they agree on feasibility and, on success,
    both produce a *valid* workflow achieving the specification: its inset
    draws only on the triggering conditions and every goal label is either
    produced by the workflow or a trigger carried through as a free label
    (the same acceptance the construction property tests use — strict
    ``W.out = ω`` is unattainable when a goal label is also a trigger the
    workflow consumes).  The workflows need not be identical: redundant
    producers leave the pruning phase legitimate tie-break freedom.
    """

    if a.succeeded != b.succeeded:
        return False
    if not a.succeeded:
        return True

    def achieves(result: ConstructionResult) -> bool:
        workflow = result.workflow
        assert workflow is not None
        spec = result.specification
        return (
            workflow.is_valid()
            and workflow.inset <= spec.triggers
            and spec.goals <= set(workflow.labels) | spec.triggers
        )

    return achieves(a) and achieves(b)
