"""The workflow supergraph: a unified view of all available know-how.

The construction strategy of the paper (Section 3.1) combines all workflow
fragments of the knowledge set ``K`` into one large graph, the *workflow
supergraph* ``G``.  The supergraph represents every possible action known to
the community, but it is not necessarily a valid workflow: it may contain
cycles, labels produced by multiple tasks, unavailable inputs, or undesired
outputs.  The coloring algorithm of :mod:`repro.core.construction` then
identifies one feasible workflow inside the supergraph.

Unlike :class:`~repro.core.workflow.Workflow`, the supergraph is *mutable*:
fragments can be added one at a time, which is what the incremental
construction variant relies on (fragments are pulled from remote hosts only
when the colored frontier reaches labels the local graph cannot yet
explain).

To make repeated construction over a growing graph cheap, the supergraph is
*versioned*: every mutation that actually changes the graph bumps a
monotonically increasing :attr:`version` and records the set of affected
nodes in a journal.  A solver that cached a coloring at version ``v`` can
ask :meth:`dirty_since` for the nodes touched after ``v`` and recolor only
that dirty region instead of the whole graph (see
:mod:`repro.core.solver`).  Adjacency indexes (label → producers/consumers,
task → in/out degree) are maintained eagerly on every ``add_fragment`` so
graph navigation during coloring never scans the task table.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping

from .errors import InvalidWorkflowError
from .fragments import KnowledgeSet, WorkflowFragment
from .graph import Edge, NodeRef
from .tasks import Task

_graph_counter = itertools.count(1)

#: Journal entries older than this are compacted (merged pairwise) to bound
#: memory on long-lived graphs.  Compaction over-approximates the dirty set
#: for very old versions, which is safe: recoloring extra nodes is wasted
#: work, never wrong answers.
_JOURNAL_COMPACTION_THRESHOLD = 4096


class Supergraph:
    """A mutable, versioned union of workflow fragments.

    The supergraph keeps track of which fragments contributed each task so
    that, after construction, the selected sub-workflow can be attributed
    back to the know-how (and therefore the participants) it came from.
    """

    def __init__(self, fragments: Iterable[WorkflowFragment] = ()) -> None:
        self._graph_id = f"supergraph-{next(_graph_counter)}"
        self._version = 0
        self._journal: list[tuple[int, frozenset[NodeRef]]] = []
        self._tasks: dict[str, Task] = {}
        self._labels: set[str] = set()
        self._producers: dict[str, set[str]] = {}
        self._consumers: dict[str, set[str]] = {}
        self._task_fragments: dict[str, set[str]] = {}
        self._fragment_ids: set[str] = set()
        for fragment in fragments:
            self.add_fragment(fragment)

    # -- versioning --------------------------------------------------------
    @property
    def graph_id(self) -> str:
        """Process-unique identity of this graph (used in solver cache keys)."""

        return self._graph_id

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter."""

        return self._version

    def _record_mutation(self, nodes: Iterable[NodeRef]) -> None:
        affected = frozenset(nodes)
        if not affected:
            return
        self._version += 1
        self._journal.append((self._version, affected))
        if len(self._journal) > _JOURNAL_COMPACTION_THRESHOLD:
            self._compact_journal()

    def _compact_journal(self) -> None:
        """Merge the oldest half of the journal pairwise.

        A merged entry keeps the *newest* version of the pair while unioning
        the node sets, so ``dirty_since`` can only over-report for versions
        that fall inside a merged range.
        """

        half = len(self._journal) // 2
        old, recent = self._journal[:half], self._journal[half:]
        merged: list[tuple[int, frozenset[NodeRef]]] = []
        for i in range(0, len(old), 2):
            pair = old[i : i + 2]
            merged.append((pair[-1][0], frozenset().union(*(s for _, s in pair))))
        self._journal = merged + recent

    def dirty_since(self, version: int) -> frozenset[NodeRef]:
        """Nodes added or whose adjacency changed after ``version``.

        ``dirty_since(self.version)`` is always empty.  For versions that
        predate journal compaction the result may be a superset of the true
        dirty region (never a subset), which keeps incremental recoloring
        conservative but correct.
        """

        if version >= self._version:
            return frozenset()
        dirty: set[NodeRef] = set()
        for entry_version, nodes in reversed(self._journal):
            if entry_version <= version:
                break
            dirty |= nodes
        return frozenset(dirty)

    # -- mutation ----------------------------------------------------------
    def add_fragment(self, fragment: WorkflowFragment) -> bool:
        """Merge a fragment into the supergraph.

        Returns ``True`` when the fragment added at least one new node or
        edge, ``False`` when it was already fully represented (including
        when the same fragment id was added before).
        """

        if fragment.fragment_id in self._fragment_ids:
            return False
        affected: set[NodeRef] = set()
        try:
            for task in fragment.tasks:
                self._add_task(task, fragment.fragment_id, affected)
        finally:
            # Journal even when a later task of the fragment conflicts and
            # raises: the earlier tasks are already merged, and dirty_since
            # must never under-report.  The fragment id is only registered
            # on success so a corrected resubmission is not ignored.
            self._record_mutation(affected)
        self._fragment_ids.add(fragment.fragment_id)
        return bool(affected)

    def add_fragments_batch(self, fragments: Iterable[WorkflowFragment]) -> int:
        """Merge a batch of fragments under a *single* journal entry.

        Ingesting a discovery response fragment-by-fragment would bump
        :attr:`version` once per fragment and leave one journal entry each;
        a solver re-solving after the response would still recolor the same
        dirty region, but the journal would grow (and compact) needlessly.
        The batch merge unions every affected node into one journal entry
        and bumps the version once, so one discovery round costs one dirty
        frontier regardless of how many fragments it delivered.

        Returns how many fragments added at least one new node or edge.
        Like :meth:`add_fragment`, a conflicting task definition raises
        *after* journaling the nodes merged so far.
        """

        affected: set[NodeRef] = set()
        changed = 0
        try:
            for fragment in fragments:
                if fragment.fragment_id in self._fragment_ids:
                    continue
                before = len(affected)
                for task in fragment.tasks:
                    self._add_task(task, fragment.fragment_id, affected)
                self._fragment_ids.add(fragment.fragment_id)
                if len(affected) > before:
                    changed += 1
        finally:
            self._record_mutation(affected)
        return changed

    def add_knowledge(self, knowledge: KnowledgeSet | Iterable[WorkflowFragment]) -> int:
        """Merge every fragment of ``knowledge``; returns how many changed the graph."""

        return self.add_fragments_batch(knowledge)

    def add_label(self, label: str) -> None:
        """Ensure a free-standing label node exists (used for trigger labels)."""

        if label not in self._labels:
            self._labels.add(label)
            self._producers.setdefault(label, set())
            self._consumers.setdefault(label, set())
            self._record_mutation({NodeRef.label(label)})

    def _add_label_quietly(self, label: str, affected: set[NodeRef]) -> None:
        if label not in self._labels:
            self._labels.add(label)
            self._producers.setdefault(label, set())
            self._consumers.setdefault(label, set())
            affected.add(NodeRef.label(label))

    def _add_task(self, task: Task, fragment_id: str, affected: set[NodeRef]) -> bool:
        existing = self._tasks.get(task.name)
        if existing is not None:
            if existing != task:
                raise InvalidWorkflowError(
                    f"conflicting definitions for task {task.name!r} while merging "
                    f"fragment {fragment_id!r}"
                )
            self._task_fragments[task.name].add(fragment_id)
            return False
        self._tasks[task.name] = task
        self._task_fragments[task.name] = {fragment_id}
        affected.add(NodeRef.task(task.name))
        for label in task.inputs | task.outputs:
            self._add_label_quietly(label, affected)
        for out in task.outputs:
            self._producers[out].add(task.name)
            # The label gained a producer: its parent set changed.
            affected.add(NodeRef.label(out))
        for inp in task.inputs:
            self._consumers[inp].add(task.name)
        return True

    # -- accessors ------------------------------------------------------------
    @property
    def tasks(self) -> Mapping[str, Task]:
        return dict(self._tasks)

    @property
    def task_names(self) -> frozenset[str]:
        return frozenset(self._tasks)

    @property
    def labels(self) -> frozenset[str]:
        return frozenset(self._labels)

    @property
    def fragment_ids(self) -> frozenset[str]:
        return frozenset(self._fragment_ids)

    @property
    def fragment_count(self) -> int:
        """Number of merged fragments, without materializing the id set."""

        return len(self._fragment_ids)

    def task(self, name: str) -> Task:
        return self._tasks[name]

    def has_task(self, name: str) -> bool:
        return name in self._tasks

    def has_label(self, name: str) -> bool:
        return name in self._labels

    def has_node(self, node: NodeRef) -> bool:
        return node.name in self._tasks if node.is_task else node.name in self._labels

    def fragments_for_task(self, task_name: str) -> frozenset[str]:
        """The ids of the fragments that contributed ``task_name``."""

        return frozenset(self._task_fragments.get(task_name, ()))

    def __len__(self) -> int:
        return len(self._tasks) + len(self._labels)

    @property
    def node_count(self) -> int:
        return len(self)

    @property
    def edge_count(self) -> int:
        return sum(len(t.inputs) + len(t.outputs) for t in self._tasks.values())

    # -- graph navigation --------------------------------------------------------
    def nodes(self) -> Iterator[NodeRef]:
        for name in sorted(self._labels):
            yield NodeRef.label(name)
        for name in sorted(self._tasks):
            yield NodeRef.task(name)

    def edges(self) -> Iterator[Edge]:
        for name in sorted(self._tasks):
            task = self._tasks[name]
            for inp in sorted(task.inputs):
                yield Edge(NodeRef.label(inp), NodeRef.task(name))
            for out in sorted(task.outputs):
                yield Edge(NodeRef.task(name), NodeRef.label(out))

    def producers_of(self, label: str) -> frozenset[str]:
        return frozenset(self._producers.get(label, ()))

    def consumers_of(self, label: str) -> frozenset[str]:
        return frozenset(self._consumers.get(label, ()))

    # -- degree indexes ----------------------------------------------------
    def in_degree(self, node: NodeRef) -> int:
        """Number of parents: producers for a label, inputs for a task."""

        if node.is_task:
            return len(self._tasks[node.name].inputs)
        return len(self._producers.get(node.name, ()))

    def out_degree(self, node: NodeRef) -> int:
        """Number of children: consumers for a label, outputs for a task."""

        if node.is_task:
            return len(self._tasks[node.name].outputs)
        return len(self._consumers.get(node.name, ()))

    def parents(self, node: NodeRef) -> frozenset[NodeRef]:
        if node.is_task:
            return frozenset(NodeRef.label(i) for i in self._tasks[node.name].inputs)
        return frozenset(NodeRef.task(t) for t in self.producers_of(node.name))

    def children(self, node: NodeRef) -> frozenset[NodeRef]:
        if node.is_task:
            return frozenset(NodeRef.label(o) for o in self._tasks[node.name].outputs)
        return frozenset(NodeRef.task(t) for t in self.consumers_of(node.name))

    def is_disjunctive_node(self, node: NodeRef) -> bool:
        """Label nodes are disjunctive; task nodes follow their declared mode."""

        if node.is_label:
            return True
        return self._tasks[node.name].is_disjunctive

    # -- statistics used by the evaluation harness ---------------------------------
    def statistics(self) -> dict[str, int]:
        """Simple size statistics (used in experiment reports)."""

        return {
            "tasks": len(self._tasks),
            "labels": len(self._labels),
            "edges": self.edge_count,
            "fragments": len(self._fragment_ids),
            "version": self._version,
            "multi_producer_labels": sum(
                1 for prods in self._producers.values() if len(prods) > 1
            ),
        }

    def __repr__(self) -> str:
        return (
            f"Supergraph(tasks={len(self._tasks)}, labels={len(self._labels)}, "
            f"fragments={len(self._fragment_ids)})"
        )


def supergraph_from_knowledge(knowledge: KnowledgeSet) -> Supergraph:
    """Build a supergraph from an entire knowledge set at once."""

    return Supergraph(knowledge)
