"""Core open workflow model: the paper's primary contribution.

This package contains the formal model of Section 2.2 (labels, tasks,
workflows, fragments, specifications) and the construction algorithm of
Section 3.1 (supergraph colouring, both batch and incremental variants).
Everything here is pure, deterministic, in-memory computation with no
dependency on the networking or middleware substrates.
"""

from .constraints import (
    ConstrainedConstructionResult,
    ConstrainedSpecification,
    WorkflowConstraints,
    construct_constrained_workflow,
    critical_path_duration,
)
from .construction import (
    Color,
    ColoringState,
    ConstructionResult,
    ConstructionStatistics,
    WorkflowConstructor,
    construct_workflow,
    describe_coloring,
    is_feasible,
)
from .errors import (
    AllocationError,
    CommunicationError,
    CompositionError,
    ConfigurationError,
    ConstructionError,
    ExecutionError,
    HostUnreachableError,
    InvalidFragmentError,
    InvalidWorkflowError,
    NoBidsError,
    OpenWorkflowError,
    PruningError,
    ScheduleConflictError,
    SchedulingError,
    ServiceNotFoundError,
    SpecificationError,
    UnsatisfiableSpecificationError,
)
from .fragments import (
    KnowledgeSet,
    WorkflowFragment,
    fragment_from_task,
    fragments_from_tasks,
    knowledge_from_fragments,
)
from .graph import BipartiteGraph, Edge, NodeKind, NodeRef
from .incremental import (
    FragmentSource,
    IncrementalConstructionResult,
    IncrementalConstructor,
    IncrementalStatistics,
    LocalFragmentSource,
    construct_incrementally,
)
from .labels import Label, LabelSet, as_label, as_label_names
from .solver import (
    DEFAULT_SOLVER,
    SOLVER_REGISTRY,
    ColoringSolver,
    MemoizedColoringSolver,
    Solver,
    make_solver,
    results_equivalent,
)
from .specification import PredicateSpecification, Specification, specification
from .supergraph import Supergraph, supergraph_from_knowledge
from .tasks import Task, TaskMode, conjunctive, disjunctive
from .workflow import Workflow, empty_workflow

__all__ = [
    "AllocationError",
    "BipartiteGraph",
    "Color",
    "ColoringState",
    "ColoringSolver",
    "CommunicationError",
    "CompositionError",
    "ConfigurationError",
    "DEFAULT_SOLVER",
    "MemoizedColoringSolver",
    "SOLVER_REGISTRY",
    "Solver",
    "ConstrainedConstructionResult",
    "ConstrainedSpecification",
    "ConstructionError",
    "ConstructionResult",
    "ConstructionStatistics",
    "Edge",
    "ExecutionError",
    "FragmentSource",
    "HostUnreachableError",
    "IncrementalConstructionResult",
    "IncrementalConstructor",
    "IncrementalStatistics",
    "InvalidFragmentError",
    "InvalidWorkflowError",
    "KnowledgeSet",
    "Label",
    "LabelSet",
    "LocalFragmentSource",
    "NoBidsError",
    "NodeKind",
    "NodeRef",
    "OpenWorkflowError",
    "PredicateSpecification",
    "PruningError",
    "ScheduleConflictError",
    "SchedulingError",
    "ServiceNotFoundError",
    "Specification",
    "SpecificationError",
    "Supergraph",
    "Task",
    "TaskMode",
    "UnsatisfiableSpecificationError",
    "Workflow",
    "WorkflowConstraints",
    "WorkflowConstructor",
    "WorkflowFragment",
    "as_label",
    "as_label_names",
    "conjunctive",
    "construct_constrained_workflow",
    "construct_incrementally",
    "construct_workflow",
    "critical_path_duration",
    "describe_coloring",
    "disjunctive",
    "empty_workflow",
    "fragment_from_task",
    "fragments_from_tasks",
    "is_feasible",
    "knowledge_from_fragments",
    "make_solver",
    "results_equivalent",
    "specification",
    "supergraph_from_knowledge",
]
