"""Tasks: the behaviour nodes of an open workflow.

A *task* represents a single abstract behaviour or accomplishment without
completely specifying how it must be performed (paper, Section 2.2).  A
*service* is a concrete implementation of a task; services live in
:mod:`repro.execution.services`.  Tasks are either *conjunctive* (all inputs
required) or *disjunctive* (any one input suffices) and produce all of their
outputs.

Tasks also carry the real-world metadata needed by the allocation and
execution phases of the paper: the kind of service required to perform the
task, the expected duration, and an optional location where the task must be
performed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from .labels import as_label_names


class TaskMode(enum.Enum):
    """Input-joining semantics of a task."""

    CONJUNCTIVE = "conjunctive"
    """The task requires *all* of its inputs before it can be performed."""

    DISJUNCTIVE = "disjunctive"
    """The task requires only *one* of its inputs before it can be performed."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Task:
    """An abstract unit of work connecting input labels to output labels.

    Parameters
    ----------
    name:
        Semantic identifier of the task.  Tasks with the same name are
        considered the same node when fragments are merged into a
        supergraph.
    inputs:
        Names (or :class:`~repro.core.labels.Label` objects) of the
        precondition labels.
    outputs:
        Names of the postcondition labels.  A task produces all of its
        outputs.
    mode:
        :class:`TaskMode.CONJUNCTIVE` (default) or
        :class:`TaskMode.DISJUNCTIVE`.
    service_type:
        The kind of service needed to execute this task.  During allocation
        a participant may bid on the task only if it offers a service whose
        ``service_type`` matches.  Defaults to the task name, which models
        the common case where a task maps one-to-one onto a service.
    duration:
        Expected execution time (in simulated seconds).  Used for
        scheduling commitments.
    location:
        Optional name of the place where the task must be performed;
        ``None`` means "anywhere".
    attributes:
        Free-form metadata (e.g. hints for ranking bids).
    """

    name: str
    inputs: frozenset[str] = frozenset()
    outputs: frozenset[str] = frozenset()
    mode: TaskMode = TaskMode.CONJUNCTIVE
    service_type: str | None = None
    duration: float = 0.0
    location: str | None = None
    attributes: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __init__(
        self,
        name: str,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        mode: TaskMode = TaskMode.CONJUNCTIVE,
        service_type: str | None = None,
        duration: float = 0.0,
        location: str | None = None,
        attributes: Mapping[str, object] | None = None,
    ) -> None:
        if not name or not str(name).strip():
            raise ValueError("a task requires a non-empty name")
        if duration < 0:
            raise ValueError("task duration must be non-negative")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "inputs", as_label_names(inputs))
        object.__setattr__(self, "outputs", as_label_names(outputs))
        object.__setattr__(self, "mode", TaskMode(mode))
        object.__setattr__(self, "service_type", service_type or name)
        object.__setattr__(self, "duration", float(duration))
        object.__setattr__(self, "location", location)
        object.__setattr__(self, "attributes", dict(attributes or {}))

    # -- predicates ------------------------------------------------------
    @property
    def is_conjunctive(self) -> bool:
        """True when all inputs are required."""

        return self.mode is TaskMode.CONJUNCTIVE

    @property
    def is_disjunctive(self) -> bool:
        """True when any single input suffices."""

        return self.mode is TaskMode.DISJUNCTIVE

    @property
    def is_source_task(self) -> bool:
        """True when the task has no inputs at all.

        Such tasks can always be performed; they typically model actions
        that create their outputs from scratch ("order doughnuts").
        """

        return not self.inputs

    # -- derivation ------------------------------------------------------
    def with_inputs(self, inputs: Iterable[str]) -> "Task":
        """Return a copy of the task with a different input set."""

        return replace(self, inputs=as_label_names(inputs))

    def with_outputs(self, outputs: Iterable[str]) -> "Task":
        """Return a copy of the task with a different output set."""

        return replace(self, outputs=as_label_names(outputs))

    def without_input(self, label: str) -> "Task":
        """Return a copy with ``label`` removed from the inputs.

        Only meaningful for disjunctive tasks during pruning; the caller is
        responsible for enforcing the pruning constraints.
        """

        return replace(self, inputs=self.inputs - {label})

    def without_output(self, label: str) -> "Task":
        """Return a copy with ``label`` removed from the outputs."""

        return replace(self, outputs=self.outputs - {label})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return (
            self.name == other.name
            and self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.mode == other.mode
            and self.service_type == other.service_type
            and self.duration == other.duration
            and self.location == other.location
        )

    def __hash__(self) -> int:
        return hash((self.name, self.inputs, self.outputs, self.mode))

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, inputs={sorted(self.inputs)}, "
            f"outputs={sorted(self.outputs)}, mode={self.mode.value})"
        )


def conjunctive(
    name: str,
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    **kwargs: object,
) -> Task:
    """Convenience constructor for a conjunctive task."""

    return Task(name, inputs, outputs, mode=TaskMode.CONJUNCTIVE, **kwargs)  # type: ignore[arg-type]


def disjunctive(
    name: str,
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    **kwargs: object,
) -> Task:
    """Convenience constructor for a disjunctive task."""

    return Task(name, inputs, outputs, mode=TaskMode.DISJUNCTIVE, **kwargs)  # type: ignore[arg-type]
