"""Labels: the data/condition nodes of an open workflow.

In the formal model of the paper (Section 2.2), every input (precondition)
and output (postcondition) of a task is represented by a *label*, where each
label has a distinct meaning.  Labels and tasks together form the nodes of a
bipartite directed acyclic graph.  Nodes carry a *semantic identifier*;
nodes with the same identifier are considered equivalent, which is what makes
composition by matching sinks and sources possible.

This module provides the :class:`Label` value type and a few helpers for
working with collections of labels.  A label is deliberately lightweight —
it is hashable, immutable and compares by its semantic identifier — so that
sets of labels can be manipulated cheaply by the construction algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Label:
    """A semantic label naming a condition, artefact, or piece of data.

    Parameters
    ----------
    name:
        The semantic identifier.  Two labels with equal names denote the
        same condition and will be merged when fragments are composed.
    description:
        Optional human readable description.  Not part of equality.
    """

    name: str
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("a label requires a non-empty semantic identifier")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Label({self.name!r})"


def as_label(value: "Label | str") -> Label:
    """Coerce a string or :class:`Label` into a :class:`Label`.

    The public API accepts plain strings anywhere a label is expected; this
    helper performs the normalisation in one place.
    """

    if isinstance(value, Label):
        return value
    if isinstance(value, str):
        return Label(value)
    raise TypeError(f"expected Label or str, got {type(value).__name__}")


def as_label_names(values: Iterable["Label | str"]) -> frozenset[str]:
    """Normalise an iterable of labels/strings into a frozenset of names."""

    return frozenset(as_label(v).name for v in values)


class LabelSet:
    """An immutable set of labels addressable by semantic identifier.

    ``LabelSet`` behaves like a ``frozenset`` of label names but keeps the
    full :class:`Label` objects around so descriptions survive round trips
    through composition and configuration files.
    """

    __slots__ = ("_by_name",)

    def __init__(self, labels: Iterable["Label | str"] = ()) -> None:
        by_name: dict[str, Label] = {}
        for raw in labels:
            label = as_label(raw)
            existing = by_name.get(label.name)
            if existing is None or (not existing.description and label.description):
                by_name[label.name] = label
        self._by_name = by_name

    # -- set protocol ---------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, Label):
            return item.name in self._by_name
        return item in self._by_name

    def __iter__(self) -> Iterator[Label]:
        return iter(sorted(self._by_name.values()))

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabelSet):
            return self.names == other.names
        if isinstance(other, (set, frozenset)):
            return self.names == {
                item.name if isinstance(item, Label) else item for item in other
            }
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.names)

    def __repr__(self) -> str:
        return f"LabelSet({sorted(self._by_name)})"

    # -- accessors -------------------------------------------------------
    @property
    def names(self) -> frozenset[str]:
        """The semantic identifiers contained in this set."""

        return frozenset(self._by_name)

    def get(self, name: str) -> Label | None:
        """Return the label with ``name`` or ``None``."""

        return self._by_name.get(name)

    # -- algebra ---------------------------------------------------------
    def union(self, other: "LabelSet | Iterable[Label | str]") -> "LabelSet":
        """Return a new set containing labels from both operands."""

        return LabelSet(list(self) + [as_label(x) for x in other])

    def intersection(self, other: "LabelSet | Iterable[Label | str]") -> "LabelSet":
        """Return a new set containing labels present in both operands."""

        other_names = as_label_names(other)
        return LabelSet(label for label in self if label.name in other_names)

    def difference(self, other: "LabelSet | Iterable[Label | str]") -> "LabelSet":
        """Return a new set with labels of ``other`` removed."""

        other_names = as_label_names(other)
        return LabelSet(label for label in self if label.name not in other_names)

    def issubset(self, other: "LabelSet | Iterable[Label | str]") -> bool:
        """True when every label in this set also appears in ``other``."""

        return self.names <= as_label_names(other)
