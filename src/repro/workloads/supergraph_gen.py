"""Random supergraph workloads — the paper's evaluation methodology.

Section 5 of the paper describes the experimental setup:

    "we first construct a workflow supergraph of the chosen size by creating
    the desired number of nodes and then repeatedly adding edges between
    disconnected nodes until the graph is strongly connected.  From this
    single supergraph we can then draw a large number of
    guaranteed-satisfiable specifications by randomly picking any triggering
    conditions and goal.  We use only disjunctive task nodes in order to
    maintain the guarantee of satisfiability ...  Given a supergraph and a
    chosen number of hosts, we finish setting up the scenario by
    distributing the tasks randomly and evenly amongst the hosts, and
    independently distributing corresponding services randomly and evenly
    amongst the hosts. ... For each test run, the test driver randomly
    choses a path of the desired length through the supergraph, and the
    initial and final label nodes of the path are used as the specification
    for that test run."

:class:`RandomSupergraphWorkload` reproduces that generator.  Every task
``task-i`` produces its own label ``label-i``; input edges are added between
randomly chosen disconnected task pairs until the task-level digraph is
strongly connected.  Specifications are drawn by picking a start label and a
goal label whose shortest task-distance equals the requested path length, so
the "path length" knob controls the amount of exploration work exactly as in
the paper (longer paths require colouring a larger region of the
supergraph).  The maximum achievable path length shrinks with the graph
size, which reproduces the cut-off visible in Figures 5 and 6 for the small
25-task supergraph.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from dataclasses import dataclass, field

import networkx as nx

from ..core.fragments import KnowledgeSet, WorkflowFragment
from ..core.specification import Specification
from ..core.tasks import Task, TaskMode
from ..execution.services import ServiceDescription
from ..sim.randomness import derive_rng


def task_name(index: int) -> str:
    return f"task-{index}"


def label_name(index: int) -> str:
    return f"label-{index}"


@dataclass
class GeneratedWorkload:
    """A generated supergraph together with its derived knowledge and services.

    ``producers[i]`` is the index of the task producing ``label-i`` (always
    ``i`` in this generator); ``consumers[i]`` lists the task indexes that
    take ``label-i`` as an input.  The task-level adjacency
    (``task_successors``) is what specification sampling walks over.
    """

    num_tasks: int
    seed: int
    tasks: list[Task] = field(default_factory=list)
    fragments: list[WorkflowFragment] = field(default_factory=list)
    services: list[ServiceDescription] = field(default_factory=list)
    task_successors: dict[int, set[int]] = field(default_factory=dict)
    edge_count: int = 0

    @property
    def knowledge(self) -> KnowledgeSet:
        return KnowledgeSet(self.fragments)

    # -- host partitioning --------------------------------------------------
    def partition_fragments(self, num_hosts: int, rng: random.Random) -> list[list[WorkflowFragment]]:
        """Distribute the fragments randomly and evenly across ``num_hosts``."""

        return _partition_evenly(self.fragments, num_hosts, rng)

    def partition_services(self, num_hosts: int, rng: random.Random) -> list[list[ServiceDescription]]:
        """Distribute the services randomly and evenly (independently of fragments)."""

        return _partition_evenly(self.services, num_hosts, rng)

    # -- timing variants ----------------------------------------------------
    def with_task_durations(self, duration: float) -> "GeneratedWorkload":
        """This workload with every task taking ``duration`` simulated seconds.

        The generator's tasks are instantaneous, which makes whole trials
        collapse to simulated time zero on a zero-latency network — fine for
        allocation measurements, useless for studying crashes that land
        *mid-execution*.  The churn/durability suites use this variant so a
        workflow's execution actually spans the fault schedule's crash
        window.  Fragment ids are preserved (suffixed), so partitioning and
        discovery behave exactly like the instantaneous original.
        """

        if duration < 0:
            raise ValueError("task duration must be non-negative")
        timed = GeneratedWorkload(num_tasks=self.num_tasks, seed=self.seed)
        by_name: dict[str, Task] = {}
        for task in self.tasks:
            slow = dataclasses.replace(task, duration=duration)
            timed.tasks.append(slow)
            by_name[slow.name] = slow
        for fragment in self.fragments:
            timed.fragments.append(
                WorkflowFragment(
                    [by_name[task.name] for task in fragment.tasks],
                    fragment_id=f"{fragment.fragment_id}-d{duration:g}",
                )
            )
        timed.services = list(self.services)
        timed.task_successors = {
            node: set(successors) for node, successors in self.task_successors.items()
        }
        timed.edge_count = self.edge_count
        return timed

    # -- specification sampling -----------------------------------------------
    def max_path_length(self) -> int:
        """The largest shortest-path distance (in tasks) achievable in the graph."""

        best = 0
        for start in range(self.num_tasks):
            distances = self._task_distances(start)
            if distances:
                best = max(best, max(distances.values()))
        return best

    def path_specification(
        self, path_length: int, rng: random.Random, max_attempts: int = 200
    ) -> Specification | None:
        """Draw a guaranteed-satisfiable specification of the given difficulty.

        The returned specification's trigger is the output label of a random
        start task and its goal is the output label of a task whose shortest
        distance from the start is exactly ``path_length`` tasks.  Returns
        ``None`` when the supergraph has no pair of nodes that far apart
        (the "max path length" cut-off of the paper's figures).
        """

        if path_length < 1:
            raise ValueError("path_length must be at least 1")
        for _ in range(max_attempts):
            start = rng.randrange(self.num_tasks)
            distances = self._task_distances(start)
            # Exclude the start task itself: a cycle back to the start would
            # make the trigger and the goal the same label, which is a
            # degenerate (trivially satisfied) specification.
            candidates = [
                t for t, d in distances.items() if d == path_length and t != start
            ]
            if candidates:
                goal_task = candidates[rng.randrange(len(candidates))]
                return Specification(
                    triggers=[label_name(start)],
                    goals=[label_name(goal_task)],
                    name=f"path-{path_length}-from-{start}",
                )
        return None

    def _task_distances(self, start_task: int) -> dict[int, int]:
        """Shortest distance (number of downstream tasks) from ``start_task``.

        Distance 1 means "a task directly consuming the start task's label";
        this matches the interpretation of path length used when sampling
        specifications.
        """

        distances: dict[int, int] = {}
        queue: deque[tuple[int, int]] = deque(
            (successor, 1) for successor in sorted(self.task_successors[start_task])
        )
        while queue:
            node, distance = queue.popleft()
            if node in distances:
                continue
            distances[node] = distance
            for successor in sorted(self.task_successors[node]):
                if successor not in distances:
                    queue.append((successor, distance + 1))
        return distances


class RandomSupergraphWorkload:
    """Factory for the random strongly connected supergraphs of Section 5."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(self, num_tasks: int) -> GeneratedWorkload:
        """Generate a workload with ``num_tasks`` disjunctive task nodes."""

        if num_tasks < 2:
            raise ValueError("a supergraph needs at least two task nodes")
        rng = derive_rng(self.seed, "supergraph", num_tasks)
        digraph = nx.DiGraph()
        digraph.add_nodes_from(range(num_tasks))

        # Repeatedly add edges between *disconnected* nodes (pairs with no
        # directed path between them yet) until the graph is strongly
        # connected, as described in the paper.  Adding only edges that join
        # previously disconnected pairs keeps the supergraph sparse, which is
        # what gives the large supergraphs of Figure 5 their long paths.
        # An edge i -> j means task j consumes the label produced by task i.
        everyone = set(range(num_tasks))
        while not nx.is_strongly_connected(digraph):
            source = rng.randrange(num_tasks)
            unreachable = sorted(everyone - {source} - nx.descendants(digraph, source))
            if unreachable:
                target = unreachable[rng.randrange(len(unreachable))]
                digraph.add_edge(source, target)
                continue
            cannot_reach_source = sorted(
                everyone - {source} - nx.ancestors(digraph, source)
            )
            origin = cannot_reach_source[rng.randrange(len(cannot_reach_source))]
            digraph.add_edge(origin, source)

        workload = GeneratedWorkload(num_tasks=num_tasks, seed=self.seed)
        workload.task_successors = {
            node: set(digraph.successors(node)) for node in digraph.nodes
        }
        workload.edge_count = digraph.number_of_edges()

        for index in range(num_tasks):
            inputs = [label_name(p) for p in sorted(digraph.predecessors(index))]
            task = Task(
                task_name(index),
                inputs=inputs,
                outputs=[label_name(index)],
                mode=TaskMode.DISJUNCTIVE,
                service_type=task_name(index),
            )
            workload.tasks.append(task)
            workload.fragments.append(
                WorkflowFragment([task], fragment_id=f"seed{self.seed}-n{num_tasks}-frag-{index}")
            )
            workload.services.append(ServiceDescription(task_name(index)))
        return workload


def _partition_evenly(items: list, num_buckets: int, rng: random.Random) -> list[list]:
    """Shuffle ``items`` and deal them round-robin into ``num_buckets`` groups."""

    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    shuffled = list(items)
    rng.shuffle(shuffled)
    buckets: list[list] = [[] for _ in range(num_buckets)]
    for index, item in enumerate(shuffled):
        buckets[index % num_buckets].append(item)
    return buckets
