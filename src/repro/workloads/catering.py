"""The corporate catering scenario of the paper's Figure 1 and Section 2.1.

The knowledge available in the catering office is spread across the staff's
devices:

* the **manager** knows how to order and set out doughnuts and box lunches;
* the **master chef** knows how to cook omelets and how lunch can be served
  either at the tables or as a buffet;
* the **kitchen staff** know how to set out ingredients, make pancakes,
  serve a breakfast buffet, and prepare soup and salad;
* the **wait staff** know how to serve tables and buffets.

The module exposes the individual fragments, ready-made role bundles, the
services each role can perform, and a helper that assembles a
:class:`~repro.host.community.Community` for the scenario.  The
context-sensitivity cases discussed in the paper (lunch not requested, the
master chef out of the office, the wait staff absent) are exercised in the
examples and integration tests built on top of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fragments import WorkflowFragment
from ..core.specification import Specification
from ..core.tasks import Task, TaskMode
from ..execution.services import ServiceDescription

# -- labels (the ovals of Figure 1) -----------------------------------------------
BREAKFAST_INGREDIENTS = "breakfast ingredients"
BUFFET_ITEMS_PREPARED = "buffet items prepared"
BREAKFAST_SERVED = "breakfast served"
DOUGHNUTS_ORDERED = "doughnuts ordered"
DOUGHNUTS_AVAILABLE = "doughnuts available"
OMELET_BAR_SETUP = "omelet bar setup"
LUNCH_INGREDIENTS = "lunch ingredients"
LUNCH_PREPARED = "lunch prepared"
LUNCH_SERVED = "lunch served"
BOX_LUNCHES_ORDERED = "box lunches ordered"
BOX_LUNCHES_AVAILABLE = "box lunches available"

ALL_LABELS = frozenset(
    {
        BREAKFAST_INGREDIENTS,
        BUFFET_ITEMS_PREPARED,
        BREAKFAST_SERVED,
        DOUGHNUTS_ORDERED,
        DOUGHNUTS_AVAILABLE,
        OMELET_BAR_SETUP,
        LUNCH_INGREDIENTS,
        LUNCH_PREPARED,
        LUNCH_SERVED,
        BOX_LUNCHES_ORDERED,
        BOX_LUNCHES_AVAILABLE,
    }
)

# -- tasks (the boxes of Figure 1) ----------------------------------------------------
MAKE_PANCAKES = Task(
    "make pancakes",
    inputs=[BREAKFAST_INGREDIENTS],
    outputs=[BUFFET_ITEMS_PREPARED],
    duration=30 * 60,
    location="kitchen",
)
SET_OUT_INGREDIENTS = Task(
    "set out ingredients",
    inputs=[BREAKFAST_INGREDIENTS],
    outputs=[OMELET_BAR_SETUP],
    duration=15 * 60,
    location="dining room",
)
SERVE_BREAKFAST_BUFFET = Task(
    "serve breakfast buffet",
    inputs=[BUFFET_ITEMS_PREPARED],
    outputs=[BREAKFAST_SERVED],
    duration=20 * 60,
    location="dining room",
)
PICK_UP_DOUGHNUTS = Task(
    "pick up doughnuts",
    inputs=[DOUGHNUTS_ORDERED],
    outputs=[DOUGHNUTS_AVAILABLE],
    duration=30 * 60,
    location="bakery",
)
SET_OUT_DOUGHNUTS = Task(
    "set out doughnuts",
    inputs=[DOUGHNUTS_AVAILABLE],
    outputs=[BREAKFAST_SERVED],
    duration=10 * 60,
    location="dining room",
)
COOK_OMELETS = Task(
    "cook omelets",
    inputs=[OMELET_BAR_SETUP],
    outputs=[BREAKFAST_SERVED],
    duration=45 * 60,
    location="dining room",
)
PREPARE_SOUP_AND_SALAD = Task(
    "prepare soup and salad",
    inputs=[LUNCH_INGREDIENTS],
    outputs=[LUNCH_PREPARED],
    duration=60 * 60,
    location="kitchen",
)
SERVE_TABLES = Task(
    "serve tables",
    inputs=[LUNCH_PREPARED],
    outputs=[LUNCH_SERVED],
    duration=45 * 60,
    location="dining room",
)
SERVE_BUFFET = Task(
    "serve buffet",
    inputs=[LUNCH_PREPARED],
    outputs=[LUNCH_SERVED],
    duration=30 * 60,
    location="dining room",
)
PICK_UP_BOX_LUNCHES = Task(
    "pick up box lunches",
    inputs=[BOX_LUNCHES_ORDERED],
    outputs=[BOX_LUNCHES_AVAILABLE],
    duration=40 * 60,
    location="deli",
)
SET_OUT_BOX_LUNCHES = Task(
    "set out box lunches",
    inputs=[BOX_LUNCHES_AVAILABLE],
    outputs=[LUNCH_SERVED],
    duration=10 * 60,
    location="dining room",
)

ALL_TASKS = (
    MAKE_PANCAKES,
    SET_OUT_INGREDIENTS,
    SERVE_BREAKFAST_BUFFET,
    PICK_UP_DOUGHNUTS,
    SET_OUT_DOUGHNUTS,
    COOK_OMELETS,
    PREPARE_SOUP_AND_SALAD,
    SERVE_TABLES,
    SERVE_BUFFET,
    PICK_UP_BOX_LUNCHES,
    SET_OUT_BOX_LUNCHES,
)


@dataclass(frozen=True)
class CateringRole:
    """Know-how and capabilities carried by one member of the catering staff."""

    name: str
    fragments: tuple[WorkflowFragment, ...]
    services: tuple[ServiceDescription, ...]
    description: str = field(default="", compare=False)

    @property
    def service_types(self) -> frozenset[str]:
        return frozenset(s.service_type for s in self.services)


def _fragment(name: str, *tasks: Task) -> WorkflowFragment:
    return WorkflowFragment(tasks, fragment_id=f"catering/{name}")


def _services(*tasks: Task) -> tuple[ServiceDescription, ...]:
    return tuple(
        ServiceDescription(task.service_type or task.name, duration=task.duration)
        for task in tasks
    )


MANAGER = CateringRole(
    name="manager",
    description="Catering office manager: orders food from outside vendors.",
    fragments=(
        _fragment("doughnuts", PICK_UP_DOUGHNUTS, SET_OUT_DOUGHNUTS),
        _fragment("box-lunches", PICK_UP_BOX_LUNCHES, SET_OUT_BOX_LUNCHES),
    ),
    services=_services(PICK_UP_DOUGHNUTS, PICK_UP_BOX_LUNCHES),
)

MASTER_CHEF = CateringRole(
    name="master-chef",
    description="Knows how to serve omelets for breakfast and how to serve lunch.",
    fragments=(
        _fragment("omelets", SET_OUT_INGREDIENTS, COOK_OMELETS),
        # Lunch can be served either at the tables or as a buffet; the two
        # alternatives are separate fragments because a single valid workflow
        # cannot contain two producers of "lunch served".
        _fragment("lunch-table-service", SERVE_TABLES),
        _fragment("lunch-buffet-service", SERVE_BUFFET),
    ),
    services=_services(COOK_OMELETS),
)

KITCHEN_STAFF = CateringRole(
    name="kitchen-staff",
    description="Prepares food and sets up buffets.",
    fragments=(
        _fragment("pancake-buffet", MAKE_PANCAKES, SERVE_BREAKFAST_BUFFET),
        _fragment("soup-and-salad", PREPARE_SOUP_AND_SALAD),
        _fragment("lunch-buffet", SERVE_BUFFET),
    ),
    services=_services(
        MAKE_PANCAKES,
        SET_OUT_INGREDIENTS,
        SERVE_BREAKFAST_BUFFET,
        PREPARE_SOUP_AND_SALAD,
        SERVE_BUFFET,
        SET_OUT_DOUGHNUTS,
        SET_OUT_BOX_LUNCHES,
    ),
)

WAIT_STAFF = CateringRole(
    name="wait-staff",
    description="Serves meals at the tables or from the buffet.",
    fragments=(_fragment("table-service", SERVE_TABLES),),
    services=_services(SERVE_TABLES, SERVE_BUFFET, SERVE_BREAKFAST_BUFFET),
)

ALL_ROLES = (MANAGER, MASTER_CHEF, KITCHEN_STAFF, WAIT_STAFF)


def all_fragments() -> list[WorkflowFragment]:
    """Every fragment of Figure 1 (the community's combined knowledge)."""

    return [fragment for role in ALL_ROLES for fragment in role.fragments]


def breakfast_and_lunch_specification() -> Specification:
    """The executive assistant's request: breakfast and lunch for the meeting."""

    return Specification(
        triggers=[BREAKFAST_INGREDIENTS, LUNCH_INGREDIENTS],
        goals=[BREAKFAST_SERVED, LUNCH_SERVED],
        name="executive-meeting-meals",
    )


def breakfast_only_specification() -> Specification:
    """The same request without lunch (the paper's first what-if)."""

    return Specification(
        triggers=[BREAKFAST_INGREDIENTS],
        goals=[BREAKFAST_SERVED],
        name="executive-meeting-breakfast-only",
    )


def doughnut_breakfast_specification() -> Specification:
    """A breakfast request when only ordered doughnuts are on hand."""

    return Specification(
        triggers=[DOUGHNUTS_ORDERED],
        goals=[BREAKFAST_SERVED],
        name="doughnut-breakfast",
    )


def build_catering_community(
    roles: tuple[CateringRole, ...] = ALL_ROLES,
    construction_mode: str = "batch",
    capability_aware: bool = True,
):
    """Stand up a simulated community with one host per catering role.

    Returns the :class:`~repro.host.community.Community`; hosts are named
    after their roles.  Import is done lazily so that the pure-core parts of
    this module stay usable without the middleware stack.
    """

    from ..host.community import Community
    from ..mobility.geometry import Point
    from ..mobility.locations import Location

    community = Community()
    community.locations.add(Location("kitchen", Point(0.0, 0.0)))
    community.locations.add(Location("dining room", Point(30.0, 0.0)))
    community.locations.add(Location("office", Point(60.0, 10.0)))
    community.locations.add(Location("bakery", Point(400.0, 300.0)))
    community.locations.add(Location("deli", Point(500.0, 100.0)))
    for index, role in enumerate(roles):
        community.add_host(
            role.name,
            fragments=role.fragments,
            services=role.services,
            mobility=Point(10.0 * index, 5.0),
            construction_mode=construction_mode,
            capability_aware=capability_aware,
        )
    return community
