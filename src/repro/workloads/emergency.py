"""The construction-site emergency scenario from the paper's introduction.

"Consider a construction worker discovering a mercury spill.  While there is
a prescribed response, it is his supervisor who has the needed expertise and
training.  She initiates the response, but access to the spill is made
difficult by a support structure whose dismantling requires special
intervention which only the chief engineer can manage.  The result is a
series of frantic phone calls and the dispatching of various workers and
equipment" — i.e. exactly the reactive, opportunistic, composite workflow the
open workflow paradigm automates.

This module encodes that story as a knowledge base spread across the site
personnel: the worker who can report and cordon off the spill, the
supervisor who knows the prescribed response, the chief engineer who can
authorise and direct dismantling the support structure, the safety officer
with the hazmat know-how, and the equipment operator who can move the
containment gear.  It is used by the ``emergency_response`` example and the
context-sensitivity integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fragments import WorkflowFragment
from ..core.specification import Specification
from ..core.tasks import Task
from ..execution.services import ServiceDescription

# -- labels -----------------------------------------------------------------------
SPILL_DISCOVERED = "mercury spill discovered"
SPILL_REPORTED = "spill reported"
AREA_CORDONED = "area cordoned off"
RESPONSE_PLAN_READY = "response plan ready"
DISMANTLING_AUTHORISED = "dismantling authorised"
STRUCTURE_DISMANTLED = "support structure dismantled"
ACCESS_CLEARED = "access to spill cleared"
CONTAINMENT_KIT_ON_SITE = "containment kit on site"
SPILL_CONTAINED = "spill contained"
SITE_DECONTAMINATED = "site decontaminated"
ALL_CLEAR = "all clear declared"

# -- tasks ------------------------------------------------------------------------
REPORT_SPILL = Task(
    "report spill",
    inputs=[SPILL_DISCOVERED],
    outputs=[SPILL_REPORTED],
    duration=120,
    location="sector-7",
)
CORDON_AREA = Task(
    "cordon off area",
    inputs=[SPILL_REPORTED],
    outputs=[AREA_CORDONED],
    duration=600,
    location="sector-7",
)
PREPARE_RESPONSE_PLAN = Task(
    "prepare response plan",
    inputs=[SPILL_REPORTED],
    outputs=[RESPONSE_PLAN_READY],
    duration=900,
    location="site-office",
)
AUTHORISE_DISMANTLING = Task(
    "authorise dismantling",
    inputs=[RESPONSE_PLAN_READY],
    outputs=[DISMANTLING_AUTHORISED],
    duration=300,
    location="site-office",
)
DISMANTLE_STRUCTURE = Task(
    "dismantle support structure",
    inputs=[DISMANTLING_AUTHORISED, AREA_CORDONED],
    outputs=[STRUCTURE_DISMANTLED],
    duration=3600,
    location="sector-7",
)
CLEAR_ACCESS = Task(
    "clear access to spill",
    inputs=[STRUCTURE_DISMANTLED],
    outputs=[ACCESS_CLEARED],
    duration=900,
    location="sector-7",
)
DELIVER_CONTAINMENT_KIT = Task(
    "deliver containment kit",
    inputs=[RESPONSE_PLAN_READY],
    outputs=[CONTAINMENT_KIT_ON_SITE],
    duration=1200,
    location="sector-7",
)
CONTAIN_SPILL = Task(
    "contain spill",
    inputs=[ACCESS_CLEARED, CONTAINMENT_KIT_ON_SITE],
    outputs=[SPILL_CONTAINED],
    duration=1800,
    location="sector-7",
)
DECONTAMINATE_SITE = Task(
    "decontaminate site",
    inputs=[SPILL_CONTAINED],
    outputs=[SITE_DECONTAMINATED],
    duration=5400,
    location="sector-7",
)
DECLARE_ALL_CLEAR = Task(
    "declare all clear",
    inputs=[SITE_DECONTAMINATED],
    outputs=[ALL_CLEAR],
    duration=300,
    location="site-office",
)


@dataclass(frozen=True)
class SiteRole:
    """Know-how and capabilities of one member of the construction site staff."""

    name: str
    fragments: tuple[WorkflowFragment, ...]
    services: tuple[ServiceDescription, ...]
    description: str = field(default="", compare=False)


def _fragment(name: str, *tasks: Task) -> WorkflowFragment:
    return WorkflowFragment(tasks, fragment_id=f"emergency/{name}")


def _services(*tasks: Task) -> tuple[ServiceDescription, ...]:
    return tuple(
        ServiceDescription(task.service_type or task.name, duration=task.duration)
        for task in tasks
    )


WORKER = SiteRole(
    name="worker",
    description="Discovered the spill; can report it and help cordon the area.",
    fragments=(_fragment("report", REPORT_SPILL), _fragment("cordon", CORDON_AREA)),
    services=_services(REPORT_SPILL, CORDON_AREA),
)

SUPERVISOR = SiteRole(
    name="supervisor",
    description="Has the prescribed response training.",
    fragments=(
        _fragment("plan", PREPARE_RESPONSE_PLAN),
        _fragment("containment", CONTAIN_SPILL, DECONTAMINATE_SITE, DECLARE_ALL_CLEAR),
    ),
    services=_services(PREPARE_RESPONSE_PLAN, DECLARE_ALL_CLEAR),
)

CHIEF_ENGINEER = SiteRole(
    name="chief-engineer",
    description="Only person able to authorise and direct dismantling the structure.",
    fragments=(
        _fragment("authorise", AUTHORISE_DISMANTLING),
        _fragment("dismantle", DISMANTLE_STRUCTURE, CLEAR_ACCESS),
    ),
    services=_services(AUTHORISE_DISMANTLING, DISMANTLE_STRUCTURE),
)

SAFETY_OFFICER = SiteRole(
    name="safety-officer",
    description="Hazmat-trained; performs the actual containment and decontamination.",
    fragments=(_fragment("hazmat", CONTAIN_SPILL, DECONTAMINATE_SITE),),
    services=_services(CONTAIN_SPILL, DECONTAMINATE_SITE, CLEAR_ACCESS),
)

EQUIPMENT_OPERATOR = SiteRole(
    name="equipment-operator",
    description="Moves heavy gear around the site.",
    fragments=(_fragment("logistics", DELIVER_CONTAINMENT_KIT),),
    services=_services(DELIVER_CONTAINMENT_KIT, CORDON_AREA),
)

ALL_ROLES = (WORKER, SUPERVISOR, CHIEF_ENGINEER, SAFETY_OFFICER, EQUIPMENT_OPERATOR)


def all_fragments() -> list[WorkflowFragment]:
    return [fragment for role in ALL_ROLES for fragment in role.fragments]


def spill_response_specification() -> Specification:
    """The supervisor's goal: from a discovered spill to the all-clear."""

    return Specification(
        triggers=[SPILL_DISCOVERED],
        goals=[ALL_CLEAR],
        name="mercury-spill-response",
    )


def containment_only_specification() -> Specification:
    """A smaller goal used when only containment (not full clean-up) is needed."""

    return Specification(
        triggers=[SPILL_DISCOVERED],
        goals=[SPILL_CONTAINED],
        name="mercury-spill-containment",
    )


def build_site_community(
    roles: tuple[SiteRole, ...] = ALL_ROLES,
    capability_aware: bool = True,
):
    """Stand up the construction-site community with one host per role."""

    from ..host.community import Community
    from ..mobility.geometry import Point
    from ..mobility.locations import Location
    from ..mobility.locations import TravelModel

    community = Community(travel_model=TravelModel(speed=1.4))
    community.locations.add(Location("sector-7", Point(0.0, 0.0)))
    community.locations.add(Location("site-office", Point(250.0, 100.0)))
    community.locations.add(Location("equipment-yard", Point(120.0, 300.0)))
    positions = {
        "worker": Point(5.0, 5.0),
        "supervisor": Point(240.0, 95.0),
        "chief-engineer": Point(230.0, 110.0),
        "safety-officer": Point(100.0, 50.0),
        "equipment-operator": Point(120.0, 290.0),
    }
    for role in roles:
        community.add_host(
            role.name,
            fragments=role.fragments,
            services=role.services,
            mobility=positions.get(role.name, Point(0.0, 0.0)),
            capability_aware=capability_aware,
        )
    return community
