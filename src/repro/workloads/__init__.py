"""Workloads: the paper's evaluation generator plus narrative scenarios."""

from . import catering, emergency
from .supergraph_gen import (
    GeneratedWorkload,
    RandomSupergraphWorkload,
    label_name,
    task_name,
)

__all__ = [
    "GeneratedWorkload",
    "RandomSupergraphWorkload",
    "catering",
    "emergency",
    "label_name",
    "task_name",
]
