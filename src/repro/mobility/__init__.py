"""Mobility substrate: positions, locations, travel, and movement models."""

from .geometry import ORIGIN, Point, Rectangle, square_site
from .locations import (
    DEFAULT_WALKING_SPEED,
    Location,
    LocationDirectory,
    TravelModel,
    grid_locations,
)
from .models import (
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
    WaypointMobility,
)

__all__ = [
    "DEFAULT_WALKING_SPEED",
    "Location",
    "LocationDirectory",
    "MobilityModel",
    "ORIGIN",
    "Point",
    "RandomWaypointMobility",
    "Rectangle",
    "StaticMobility",
    "TravelModel",
    "WaypointMobility",
    "grid_locations",
    "square_site",
]
