"""Mobility models for hosts in the ad hoc community.

The open workflow paradigm targets *physically mobile* participants; hosts
move around a site, and connectivity (and therefore which know-how and
capabilities are available) changes with their positions.  This module
provides the mobility models used by the scenarios and the ad hoc network
substrate:

* :class:`StaticMobility` — the host stays put (the paper's experiments use
  stationary hosts with verified connectivity, so this is the default for
  reproducing Figures 4-6).
* :class:`WaypointMobility` — the host visits a fixed list of waypoints at a
  constant speed (useful for scripted scenarios such as "the chef leaves the
  office at 10:00").
* :class:`RandomWaypointMobility` — the classic MANET random waypoint model:
  pick a uniform destination within the site, travel to it at a random
  speed, pause, repeat.

All models answer the single question ``position_at(time)`` so they can be
evaluated lazily by the network and scheduling layers without a background
ticker.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Protocol, Sequence

from .geometry import Point, Rectangle


class MobilityModel(Protocol):
    """Anything that can report a host's position at a simulated time.

    Models may additionally implement ``next_move_time(time) -> float``:
    the earliest simulated instant at or after ``time`` from which the
    position starts changing again — ``time`` itself while mid-leg (the
    host is moving continuously), the start of the next leg while pausing
    at a waypoint, and ``inf`` once the host has come to rest for good.
    The event-driven network substrate uses it to skip re-evaluating (and
    re-indexing) hosts that provably have not moved since the last tick; a
    model without the method is conservatively re-evaluated every tick.

    Models built from piecewise-linear trajectories may also implement
    ``leg_at(time) -> (valid_until, position, velocity)``: the current
    motion segment as an exact linear function of time — the position at
    ``time``, the velocity vector (metres/second; ``(0, 0)`` while paused
    or at rest), and the simulated instant up to which that line holds
    (the end of the current leg or pause; ``inf`` once at rest for good).
    The predictive link-break scheduler uses it to compute, in closed
    form, the instant a live radio link will cross the range boundary; a
    model without the method simply gets no predictions (the lazy epoch
    path still catches every change at the next query).

    Finally, models may implement ``motion_at(time) -> (valid_until,
    start, origin, destination, speed)``: the raw parameters of the
    current trajectory leg, chosen so that for every ``t`` in ``[time,
    valid_until)`` the scalar ``position_at(t)`` is *bit-identical* to
    replaying ``origin.moved_towards(destination, (t - start) * speed)``
    (rest segments are encoded as ``origin == destination`` with zero
    speed).  The vectorized geometry kernels
    (:mod:`repro.net.kernels`) load these rows into contiguous arrays
    and evaluate whole populations in one NumPy call; a model without
    the method is simply evaluated host-by-host on the scalar path.
    """

    def position_at(self, time: float) -> Point:
        """The host's position at simulated time ``time`` (seconds)."""
        ...


def _leg_velocity(origin: Point, destination: Point, speed: float) -> tuple[float, float]:
    """Velocity vector of a constant-speed leg from ``origin`` to ``destination``."""

    distance = origin.distance_to(destination)
    if distance == 0.0:
        return (0.0, 0.0)
    return (
        (destination.x - origin.x) / distance * speed,
        (destination.y - origin.y) / distance * speed,
    )


@dataclass(frozen=True)
class StaticMobility:
    """A host that never moves."""

    position: Point

    def position_at(self, time: float) -> Point:
        return self.position

    def next_move_time(self, time: float) -> float:
        return math.inf

    def leg_at(self, time: float) -> tuple[float, Point, tuple[float, float]]:
        return math.inf, self.position, (0.0, 0.0)

    def motion_at(self, time: float) -> tuple[float, float, Point, Point, float]:
        return math.inf, 0.0, self.position, self.position, 0.0


class WaypointMobility:
    """Deterministic movement through a scripted list of waypoints.

    The host starts at the first waypoint at time 0 and moves from waypoint
    to waypoint at ``speed`` metres per second, pausing ``pause`` seconds at
    each stop.  After the final waypoint it stays there.
    """

    def __init__(
        self,
        waypoints: Sequence[Point],
        speed: float = 1.4,
        pause: float = 0.0,
    ) -> None:
        if not waypoints:
            raise ValueError("at least one waypoint is required")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if pause < 0:
            raise ValueError("pause must be non-negative")
        self._waypoints = list(waypoints)
        self._speed = speed
        self._pause = pause
        # Precompute the (start_time, end_time, origin, destination) legs.
        self._legs: list[tuple[float, float, Point, Point]] = []
        cursor = 0.0
        for origin, destination in zip(self._waypoints, self._waypoints[1:]):
            cursor += self._pause
            duration = origin.distance_to(destination) / self._speed
            self._legs.append((cursor, cursor + duration, origin, destination))
            cursor += duration
        self._leg_starts = [leg[0] for leg in self._legs]
        # Single-slot (time -> position) memo: the network snapshots every
        # host once per simulated instant, and the scheduling layer probes
        # the same instant repeatedly, so the last answer is almost always
        # the next one too.
        self._memo: tuple[float, Point] | None = None

    def position_at(self, time: float) -> Point:
        memo = self._memo
        if memo is not None and memo[0] == time:
            return memo[1]
        position = self._position_at(time)
        self._memo = (time, position)
        return position

    def _position_at(self, time: float) -> Point:
        if time <= 0 or not self._legs:
            return self._waypoints[0]
        index = bisect_right(self._leg_starts, time) - 1
        if index < 0:
            return self._waypoints[0]
        start, end, origin, destination = self._legs[index]
        if time < end:
            travelled = (time - start) * self._speed
            return origin.moved_towards(destination, travelled)
        # Past the leg's end: pausing at (or done at) its destination, which
        # is also the origin of the next leg.
        return destination

    def next_move_time(self, time: float) -> float:
        """When movement (re)starts: ``time`` mid-leg, the next leg's start
        while pausing, ``inf`` once the final waypoint is reached."""

        if not self._legs:
            return math.inf
        if time < self._legs[0][0]:
            return self._legs[0][0]
        index = bisect_right(self._leg_starts, time) - 1
        start, end, _, _ = self._legs[index]
        if time < end:
            return time
        if index + 1 < len(self._legs):
            return self._legs[index + 1][0]
        return math.inf

    def leg_at(self, time: float) -> tuple[float, Point, tuple[float, float]]:
        """The current motion segment: mid-leg it is the leg's line (valid
        until the leg ends); pausing or done it is a rest at the waypoint
        (valid until the next leg starts, ``inf`` after the last one)."""

        if not self._legs:
            return math.inf, self._waypoints[0], (0.0, 0.0)
        if time < self._legs[0][0]:
            return self._legs[0][0], self._waypoints[0], (0.0, 0.0)
        index = bisect_right(self._leg_starts, time) - 1
        start, end, origin, destination = self._legs[index]
        if time < end:
            return end, self.position_at(time), _leg_velocity(
                origin, destination, self._speed
            )
        if index + 1 < len(self._legs):
            return self._legs[index + 1][0], destination, (0.0, 0.0)
        return math.inf, destination, (0.0, 0.0)

    def motion_at(self, time: float) -> tuple[float, float, Point, Point, float]:
        """The raw current leg, exactly replayable via ``moved_towards``
        (see :class:`MobilityModel`): mid-leg the travelling segment, before
        the first leg or while pausing a rest at the waypoint."""

        if not self._legs:
            return math.inf, 0.0, self._waypoints[0], self._waypoints[0], 0.0
        if time <= 0 or time < self._legs[0][0]:
            first = self._waypoints[0]
            return self._legs[0][0], 0.0, first, first, 0.0
        index = bisect_right(self._leg_starts, time) - 1
        start, end, origin, destination = self._legs[index]
        if time < end:
            return end, start, origin, destination, self._speed
        if index + 1 < len(self._legs):
            return self._legs[index + 1][0], 0.0, destination, destination, 0.0
        return math.inf, 0.0, destination, destination, 0.0

    @property
    def final_position(self) -> Point:
        return self._waypoints[-1]

    def __repr__(self) -> str:
        return f"WaypointMobility(waypoints={len(self._waypoints)}, speed={self._speed})"


class RandomWaypointMobility:
    """The random waypoint model over a rectangular site.

    Movement is generated lazily but deterministically from the seed: the
    position at any time can be queried in any order and always yields the
    same trajectory.
    """

    def __init__(
        self,
        area: Rectangle,
        seed: int,
        min_speed: float = 0.5,
        max_speed: float = 2.0,
        pause: float = 5.0,
        start: Point | None = None,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("speeds must satisfy 0 < min_speed <= max_speed")
        if pause < 0:
            raise ValueError("pause must be non-negative")
        self._area = area
        self._rng = random.Random(seed)
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._pause = pause
        origin = start if start is not None else area.random_point(self._rng)
        # Legs are appended on demand as queries reach further into the future.
        # Each leg: (start_time, end_time, origin, destination, speed) followed
        # by a pause of self._pause seconds at the destination.
        self._legs: list[tuple[float, float, Point, Point, float]] = []
        self._leg_starts: list[float] = []
        self._horizon = 0.0
        self._last_position = origin
        # Single-slot (time -> position) memo, same rationale as
        # :class:`WaypointMobility`: queries cluster on one simulated instant.
        self._memo: tuple[float, Point] | None = None

    def _extend_to(self, time: float) -> None:
        while self._horizon <= time:
            destination = self._area.random_point(self._rng)
            speed = self._rng.uniform(self._min_speed, self._max_speed)
            duration = self._last_position.distance_to(destination) / speed
            start = self._horizon
            end = start + duration
            self._legs.append((start, end, self._last_position, destination, speed))
            self._leg_starts.append(start)
            self._horizon = end + self._pause
            self._last_position = destination

    def position_at(self, time: float) -> Point:
        memo = self._memo
        if memo is not None and memo[0] == time:
            return memo[1]
        position = self._position_at(time)
        self._memo = (time, position)
        return position

    def _position_at(self, time: float) -> Point:
        if time <= 0:
            self._extend_to(0.0)
            return self._legs[0][2]
        self._extend_to(time)
        index = bisect_right(self._leg_starts, time) - 1
        start, end, origin, destination, speed = self._legs[index]
        if time < end:
            return origin.moved_towards(destination, (time - start) * speed)
        # Pausing at the destination until the next leg starts.
        return destination

    def next_move_time(self, time: float) -> float:
        """When movement (re)starts: ``time`` mid-leg, else the end of the
        current pause.  Random waypoints wander forever, so never ``inf``;
        the trajectory is extended (deterministically) as far as needed."""

        time = max(time, 0.0)
        self._extend_to(time)
        index = max(bisect_right(self._leg_starts, time) - 1, 0)
        _, end, _, _, _ = self._legs[index]
        if time < end:
            return time
        # Pausing at the leg's destination; the next leg starts pause later.
        return end + self._pause

    def leg_at(self, time: float) -> tuple[float, Point, tuple[float, float]]:
        """The current motion segment (the trajectory is extended —
        deterministically — as far as needed): mid-leg the leg's line,
        otherwise a rest at the destination until the pause ends."""

        time = max(time, 0.0)
        self._extend_to(time)
        index = max(bisect_right(self._leg_starts, time) - 1, 0)
        start, end, origin, destination, speed = self._legs[index]
        if start <= time < end:
            return end, self.position_at(time), _leg_velocity(
                origin, destination, speed
            )
        if time < start:
            return start, origin, (0.0, 0.0)
        # Pausing at the destination; the next leg starts pause later.
        return end + self._pause, destination, (0.0, 0.0)

    def motion_at(self, time: float) -> tuple[float, float, Point, Point, float]:
        """The raw current leg (extending the trajectory as needed), exactly
        replayable via ``moved_towards`` (see :class:`MobilityModel`)."""

        if time <= 0:
            self._extend_to(0.0)
            start, end, origin, destination, speed = self._legs[0]
            return end, start, origin, destination, speed
        self._extend_to(time)
        index = bisect_right(self._leg_starts, time) - 1
        start, end, origin, destination, speed = self._legs[index]
        if time < end:
            return end, start, origin, destination, speed
        # Pausing at the destination; the next leg starts pause later.
        return end + self._pause, 0.0, destination, destination, 0.0

    def __repr__(self) -> str:
        return (
            f"RandomWaypointMobility(area={self._area!r}, "
            f"speed=[{self._min_speed}, {self._max_speed}], pause={self._pause})"
        )
