"""Named locations and the travel-time model.

Tasks in an open workflow may require the performing participant to be at a
specific place ("the loading dock", "conference room B").  During the
allocation phase a participant only bids on a task if it can travel to the
task's location in time (paper, Section 2.2, service availability condition
3), and during execution the schedule manager blocks out the necessary
travel time before each commitment (visible in the paper's Figure 2(a)
screenshot as greyed-out travel periods).

:class:`LocationDirectory` maps symbolic location names to coordinates, and
:class:`TravelModel` converts distances to travel times using a walking (or
driving) speed.  Unknown locations are treated conservatively: travel to
them takes :attr:`TravelModel.unknown_location_penalty` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .geometry import Point


@dataclass(frozen=True)
class Location:
    """A named place on the site."""

    name: str
    position: Point
    description: str = field(default="", compare=False)

    def __repr__(self) -> str:
        return f"Location({self.name!r}, {self.position!r})"


class LocationDirectory:
    """A registry of the named locations known to a deployment.

    The directory is shared community knowledge: all hosts in a scenario use
    the same directory (just as all workers on a construction site share the
    same map).  Hosts' *positions*, by contrast, are per-host state owned by
    their mobility model.
    """

    def __init__(self, locations: Iterable[Location] = ()) -> None:
        self._locations: dict[str, Location] = {}
        for location in locations:
            self.add(location)

    def add(self, location: Location) -> None:
        """Register (or replace) a named location."""

        self._locations[location.name] = location

    def add_point(self, name: str, x: float, y: float, description: str = "") -> Location:
        """Convenience: register a location from raw coordinates."""

        location = Location(name, Point(x, y), description)
        self.add(location)
        return location

    def get(self, name: str) -> Location | None:
        return self._locations.get(name)

    def position_of(self, name: str) -> Point | None:
        location = self._locations.get(name)
        return location.position if location else None

    def __contains__(self, name: str) -> bool:
        return name in self._locations

    def __iter__(self) -> Iterator[Location]:
        return iter(sorted(self._locations.values(), key=lambda loc: loc.name))

    def __len__(self) -> int:
        return len(self._locations)

    def names(self) -> frozenset[str]:
        return frozenset(self._locations)

    def __repr__(self) -> str:
        return f"LocationDirectory({sorted(self._locations)})"


DEFAULT_WALKING_SPEED = 1.4
"""Average human walking speed in metres per second."""


@dataclass(frozen=True)
class TravelModel:
    """Converts geometry into travel times.

    Parameters
    ----------
    speed:
        Travel speed in metres per second (default: walking pace).
    fixed_overhead:
        Constant seconds added to every non-zero trip (packing up, elevator
        waits, and so on).
    unknown_location_penalty:
        Travel time assumed when either endpoint is unknown.  A generous
        constant keeps the middleware conservative: it will still bid, but
        it will reserve plenty of travel time.
    """

    speed: float = DEFAULT_WALKING_SPEED
    fixed_overhead: float = 0.0
    unknown_location_penalty: float = 300.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("travel speed must be positive")
        if self.fixed_overhead < 0 or self.unknown_location_penalty < 0:
            raise ValueError("travel overheads must be non-negative")

    def travel_seconds(self, origin: Point | None, destination: Point | None) -> float:
        """Seconds needed to move from ``origin`` to ``destination``."""

        if origin is None or destination is None:
            return self.unknown_location_penalty
        distance = origin.distance_to(destination)
        if distance == 0.0:
            return 0.0
        return self.fixed_overhead + distance / self.speed

    def travel_between(
        self,
        directory: LocationDirectory,
        origin_name: str | None,
        destination_name: str | None,
    ) -> float:
        """Travel time between two named locations (``None`` means "anywhere")."""

        if destination_name is None:
            return 0.0
        origin = directory.position_of(origin_name) if origin_name else None
        destination = directory.position_of(destination_name)
        if destination is None:
            return self.unknown_location_penalty
        if origin_name is not None and origin is None:
            return self.unknown_location_penalty
        return self.travel_seconds(origin, destination) if origin is not None else 0.0


def grid_locations(
    names: Iterable[str], spacing: float = 50.0, columns: int = 4
) -> LocationDirectory:
    """Lay out named locations on a grid (handy for synthetic scenarios)."""

    directory = LocationDirectory()
    for index, name in enumerate(names):
        row, col = divmod(index, max(1, columns))
        directory.add(Location(name, Point(col * spacing, row * spacing)))
    return directory
