"""Plane geometry primitives used by the mobility and radio models.

Participants in an open workflow community are physically mobile; both the
ad hoc wireless connectivity model (hosts in radio range can talk) and the
schedule feasibility checks (can the participant reach the task's location
in time?) need positions and distances.  We model the world as a simple 2-D
plane measured in metres, which is the standard abstraction used by MANET
simulators for the scale of sites the paper targets (construction sites,
field hospitals, catering facilities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """A position on the 2-D plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""

        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""

        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""

        return Point(self.x + dx, self.y + dy)

    def moved_towards(self, target: "Point", distance: float) -> "Point":
        """Move ``distance`` metres towards ``target`` (never overshooting)."""

        total = self.distance_to(target)
        if total == 0.0 or distance >= total:
            return target
        fraction = distance / total
        return Point(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def __repr__(self) -> str:
        return f"Point({self.x:.1f}, {self.y:.1f})"


ORIGIN = Point(0.0, 0.0)


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangular area (the "site" hosts move within)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError("rectangle extents must be non-negative")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside (or on the border of) the rectangle."""

        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def clamp(self, point: Point) -> Point:
        """The nearest point inside the rectangle."""

        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def random_point(self, rng) -> Point:
        """A uniformly distributed point inside the rectangle."""

        return Point(
            rng.uniform(self.min_x, self.max_x),
            rng.uniform(self.min_y, self.max_y),
        )

    def __repr__(self) -> str:
        return (
            f"Rectangle({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
        )


def square_site(side_metres: float) -> Rectangle:
    """A square deployment area with its corner at the origin."""

    if side_metres <= 0:
        raise ValueError("side length must be positive")
    return Rectangle(0.0, 0.0, side_metres, side_metres)
