"""Discovery substrate: know-how (fragment) and capability (service) queries."""

from .capability import CapabilityDirectory, make_capability_query
from .knowhow import FragmentManager

__all__ = [
    "CapabilityDirectory",
    "FragmentManager",
    "make_capability_query",
]
