"""Discovery substrate: know-how (fragment) and capability (service) queries."""

from .capability import CapabilityDirectory, make_capability_query
from .fragment_index import FragmentIndex
from .knowhow import FragmentManager

__all__ = [
    "CapabilityDirectory",
    "FragmentIndex",
    "FragmentManager",
    "make_capability_query",
]
