"""Versioned inverted index over a host's workflow fragments.

:class:`FragmentIndex` is the storage engine behind the
:class:`~repro.discovery.knowhow.FragmentManager`.  It extends the core
:class:`~repro.core.fragments.KnowledgeSet` (label → producing/consuming
fragments) with the three extra ingredients the shared knowledge plane
needs:

* **More inverted keys.**  The inherited produced/consumed-label keys are
  what ``matching_fragments`` answers wire queries from, in O(matches)
  instead of O(fragments).  Fragments are additionally indexed by the
  names of the tasks they contain and by the service types (capabilities)
  those tasks require — introspection keys maintained at the same cost,
  exposed as :meth:`fragments_with_task` / :meth:`fragments_with_capability`
  for capability-aware routing extensions (not yet consulted by the wire
  protocol itself).
* **Ingestion sequence numbers.**  Every fragment receives a monotonically
  increasing sequence number when it is first added; :attr:`version` is the
  highest number handed out so far.  A remote that has previously performed
  a full sync at version ``v`` can ask for "everything since ``v``"
  (:meth:`fragments_since`) and receive only the knowledge it has not seen,
  which is what the delta fields on
  :class:`~repro.net.messages.FragmentQuery` /
  :class:`~repro.net.messages.FragmentResponse` carry on the wire.
* **Cheap removal.**  Obsolete know-how is dropped from every index in
  O(fragment) instead of rebuilding the whole set.

Index keys and delta semantics are documented for maintainers in
``ROADMAP.md`` ("Performance architecture (PR 3): knowledge plane").
"""

from __future__ import annotations

from typing import Iterable

from ..core.fragments import KnowledgeSet, WorkflowFragment


class FragmentIndex(KnowledgeSet):
    """A :class:`KnowledgeSet` with task/capability keys and a version stream.

    The inherited label indexes answer "which fragments produce/consume this
    artifact"; the extra indexes added here answer "which fragments mention
    this task" and "which fragments need this capability".  All four are
    maintained eagerly on :meth:`add` / :meth:`discard`.
    """

    def __init__(self, fragments: Iterable[WorkflowFragment] = ()) -> None:
        self._by_task: dict[str, set[str]] = {}
        self._by_capability: dict[str, set[str]] = {}
        self._sequence: dict[str, int] = {}
        self._next_sequence = 0
        super().__init__(fragments)

    # -- mutation ----------------------------------------------------------
    def add(self, fragment: WorkflowFragment) -> None:
        """Index a fragment (idempotent by id, like the base class)."""

        if fragment.fragment_id in self._fragments:
            return
        super().add(fragment)
        fragment_id = fragment.fragment_id
        self._next_sequence += 1
        self._sequence[fragment_id] = self._next_sequence
        for task in fragment.tasks:
            self._by_task.setdefault(task.name, set()).add(fragment_id)
            if task.service_type is not None:
                self._by_capability.setdefault(task.service_type, set()).add(
                    fragment_id
                )

    def discard(self, fragment_id: str) -> bool:
        """Remove a fragment from every index; returns whether it existed.

        The sequence number of a removed fragment is retired, never reused:
        :attr:`version` stays monotone, and a later delta query simply no
        longer sees the forgotten know-how.
        """

        fragment = self._fragments.pop(fragment_id, None)
        if fragment is None:
            return False
        self._sequence.pop(fragment_id, None)
        for task in fragment.tasks:
            for out in task.outputs:
                self._discard_key(self._producing, out, fragment_id)
            for inp in task.inputs:
                self._discard_key(self._consuming, inp, fragment_id)
            self._discard_key(self._by_task, task.name, fragment_id)
            if task.service_type is not None:
                self._discard_key(self._by_capability, task.service_type, fragment_id)
        return True

    @staticmethod
    def _discard_key(index: dict[str, set[str]], key: str, fragment_id: str) -> None:
        bucket = index.get(key)
        if bucket is None:
            return
        bucket.discard(fragment_id)
        if not bucket:
            del index[key]

    # -- version stream ----------------------------------------------------
    @property
    def version(self) -> int:
        """The sequence number of the most recently ingested fragment."""

        return self._next_sequence

    def sequence_of(self, fragment_id: str) -> int:
        """Ingestion sequence number of a stored fragment (0 if unknown)."""

        return self._sequence.get(fragment_id, 0)

    def fragments_since(self, version: int) -> list[WorkflowFragment]:
        """Fragments ingested after ``version``, in ingestion order.

        ``fragments_since(0)`` is everything; ``fragments_since(self.version)``
        is empty.  Because removals only delete entries, iterating the
        insertion-ordered fragment table already yields ascending sequence
        numbers — the common ``version == 0`` case is a plain copy and the
        delta case an O(fragments) filter without sorting.
        """

        if version <= 0:
            return list(self._fragments.values())
        sequence = self._sequence
        return [
            fragment
            for fragment_id, fragment in self._fragments.items()
            if sequence[fragment_id] > version
        ]

    # -- indexed lookups ---------------------------------------------------
    def fragments_with_task(self, task_name: str) -> list[WorkflowFragment]:
        """Fragments containing a task named ``task_name``."""

        return [
            self._fragments[fid]
            for fid in sorted(self._by_task.get(task_name, ()))
        ]

    def fragments_with_capability(self, service_type: str) -> list[WorkflowFragment]:
        """Fragments with at least one task requiring ``service_type``."""

        return [
            self._fragments[fid]
            for fid in sorted(self._by_capability.get(service_type, ()))
        ]

    def __repr__(self) -> str:
        return (
            f"FragmentIndex(fragments={len(self._fragments)}, "
            f"version={self._next_sequence})"
        )
