"""The Fragment Manager: a host's database of workflow know-how.

The Fragment Manager "is responsible for maintaining a host's database of
workflow fragments and responding to knowhow queries during workflow
construction" (paper, Section 4.2).  Queries come in two flavours matching
the two construction strategies:

* *collect everything* (``want_all=True``) — used by the batch algorithm of
  Section 3.1, which gathers the entire community knowledge before
  colouring;
* *targeted* — used by the incremental variant, which only asks for
  fragments producing or consuming the labels at the boundary of the
  coloured region, excluding fragments the initiator already holds.

Both flavours additionally honour the *delta* field of a query
(``since_version``): the manager assigns every fragment a monotonically
increasing ingestion sequence number (see
:class:`~repro.discovery.fragment_index.FragmentIndex`), reports its
current :attr:`version` on every response, and a querier that already holds
everything up to version ``v`` receives only fragments ingested after
``v``.  Repeat workflows on a host that stays in sync with the community
therefore cost O(new knowledge), not O(community knowledge).

Queries are answered from the inverted index by default; construct the
manager with ``use_index=False`` to answer by the original linear scan
(kept as the reference implementation for the equivalence property tests).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Iterable

from ..core.fragments import WorkflowFragment
from ..net.messages import FragmentQuery, FragmentResponse
from .fragment_index import FragmentIndex

_epoch_counter = itertools.count(1)


class FragmentManager:
    """Stores and serves the workflow fragments known to one host.

    :attr:`epoch` identifies this database *instance* (process-unique).
    Delta floors recorded by remote hosts are only meaningful against the
    instance that issued them: a new device reusing a departed host's id
    gets a fresh epoch, so stale floors are detected and ignored rather
    than silently hiding the new device's knowledge.
    """

    def __init__(
        self,
        host_id: str,
        fragments: Iterable[WorkflowFragment] = (),
        use_index: bool = True,
        durability=None,
    ) -> None:
        self.host_id = host_id
        self.use_index = use_index
        self.durability = durability
        self.epoch = next(_epoch_counter)
        if durability is not None:
            durability.epoch_started(self.epoch)
        self._knowledge = FragmentIndex()
        self.queries_answered = 0
        self.fragments_served = 0
        for fragment in fragments:
            self.add_fragment(fragment)

    # -- database ------------------------------------------------------------
    def add_fragment(self, fragment: WorkflowFragment) -> WorkflowFragment:
        """Store a fragment, attributing it to this host if unattributed."""

        if fragment.contributor is None:
            fragment = fragment.with_contributor(self.host_id)
        self._knowledge.add(fragment)
        if self.durability is not None:
            self.durability.fragment_added(fragment)
        return fragment

    def add_fragments(self, fragments: Iterable[WorkflowFragment]) -> None:
        for fragment in fragments:
            self.add_fragment(fragment)

    def remove_fragment(self, fragment_id: str) -> bool:
        """Forget a fragment (e.g. the know-how became obsolete)."""

        removed = self._knowledge.discard(fragment_id)
        if removed and self.durability is not None:
            self.durability.fragment_discarded(fragment_id)
        return removed

    @property
    def knowledge(self) -> FragmentIndex:
        return self._knowledge

    @property
    def version(self) -> int:
        """Monotone counter of fragment ingestions (the delta-query epoch)."""

        return self._knowledge.version

    @property
    def fragment_count(self) -> int:
        return len(self._knowledge)

    @property
    def fragment_ids(self) -> frozenset[str]:
        return self._knowledge.fragment_ids

    def all_fragments(self) -> list[WorkflowFragment]:
        return list(self._knowledge)

    def fragments_since(self, version: int) -> list[WorkflowFragment]:
        """Fragments ingested after ``version`` in ingestion order."""

        return self._knowledge.fragments_since(version)

    # -- query answering ---------------------------------------------------------
    def matching_fragments(self, query: FragmentQuery) -> list[WorkflowFragment]:
        """The fragments this host would return for ``query``.

        The result is ordered by ingestion sequence and honours all three
        narrowing fields: the label sets (unless ``want_all``), the
        exclusion list, and the delta floor ``since_version``.  A floor
        recorded against a different database instance
        (``query.since_epoch`` set but not this manager's :attr:`epoch`)
        is ignored — the querier's knowledge of *this* instance is empty.
        """

        if query.since_epoch >= 0 and query.since_epoch != self.epoch:
            query = replace(query, since_version=0, since_epoch=-1)
        if self.use_index:
            return self._matching_indexed(query)
        return self._matching_linear(query)

    def _matching_indexed(self, query: FragmentQuery) -> list[WorkflowFragment]:
        knowledge = self._knowledge
        if query.want_all:
            candidates = knowledge.fragments_since(query.since_version)
        else:
            by_id: dict[str, WorkflowFragment] = {}
            for label in query.consuming:
                for fragment in knowledge.fragments_consuming(label):
                    by_id[fragment.fragment_id] = fragment
            for label in query.producing:
                for fragment in knowledge.fragments_producing(label):
                    by_id[fragment.fragment_id] = fragment
            candidates = sorted(
                by_id.values(),
                key=lambda f: knowledge.sequence_of(f.fragment_id),
            )
            if query.since_version > 0:
                candidates = [
                    fragment
                    for fragment in candidates
                    if knowledge.sequence_of(fragment.fragment_id)
                    > query.since_version
                ]
        if not query.exclude_fragment_ids:
            return candidates
        return [
            fragment
            for fragment in candidates
            if fragment.fragment_id not in query.exclude_fragment_ids
        ]

    def _matching_linear(self, query: FragmentQuery) -> list[WorkflowFragment]:
        """Reference implementation: one pass over every stored fragment."""

        knowledge = self._knowledge
        matches: list[WorkflowFragment] = []
        for fragment in knowledge:
            if fragment.fragment_id in query.exclude_fragment_ids:
                continue
            if knowledge.sequence_of(fragment.fragment_id) <= query.since_version:
                continue
            if not query.want_all:
                relevant = any(
                    fragment.consumes_label(label) for label in query.consuming
                ) or any(fragment.produces_label(label) for label in query.producing)
                if not relevant:
                    continue
            matches.append(fragment)
        return matches

    def handle_query(self, query: FragmentQuery) -> FragmentResponse:
        """Build the wire response for an incoming know-how query.

        The response carries this manager's current :attr:`version` so the
        querier can record a high-water mark and issue delta queries later.
        """

        self.queries_answered += 1
        fragments = tuple(self.matching_fragments(query))
        self.fragments_served += len(fragments)
        return FragmentResponse(
            sender=self.host_id,
            recipient=query.sender,
            fragments=fragments,
            workflow_id=query.workflow_id,
            knowledge_version=self.version,
            knowledge_epoch=self.epoch,
        )

    def __repr__(self) -> str:
        return f"FragmentManager(host={self.host_id!r}, fragments={len(self._knowledge)})"
