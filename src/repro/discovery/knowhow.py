"""The Fragment Manager: a host's database of workflow know-how.

The Fragment Manager "is responsible for maintaining a host's database of
workflow fragments and responding to knowhow queries during workflow
construction" (paper, Section 4.2).  Queries come in two flavours matching
the two construction strategies:

* *collect everything* (``want_all=True``) — used by the batch algorithm of
  Section 3.1, which gathers the entire community knowledge before
  colouring;
* *targeted* — used by the incremental variant, which only asks for
  fragments producing or consuming the labels at the boundary of the
  coloured region, excluding fragments the initiator already holds.
"""

from __future__ import annotations

from typing import Iterable

from ..core.fragments import KnowledgeSet, WorkflowFragment
from ..net.messages import FragmentQuery, FragmentResponse


class FragmentManager:
    """Stores and serves the workflow fragments known to one host."""

    def __init__(
        self, host_id: str, fragments: Iterable[WorkflowFragment] = ()
    ) -> None:
        self.host_id = host_id
        self._knowledge = KnowledgeSet()
        self.queries_answered = 0
        self.fragments_served = 0
        for fragment in fragments:
            self.add_fragment(fragment)

    # -- database ------------------------------------------------------------
    def add_fragment(self, fragment: WorkflowFragment) -> WorkflowFragment:
        """Store a fragment, attributing it to this host if unattributed."""

        if fragment.contributor is None:
            fragment = fragment.with_contributor(self.host_id)
        self._knowledge.add(fragment)
        return fragment

    def add_fragments(self, fragments: Iterable[WorkflowFragment]) -> None:
        for fragment in fragments:
            self.add_fragment(fragment)

    def remove_fragment(self, fragment_id: str) -> bool:
        """Forget a fragment (e.g. the know-how became obsolete)."""

        if fragment_id not in self._knowledge:
            return False
        remaining = [f for f in self._knowledge if f.fragment_id != fragment_id]
        self._knowledge = KnowledgeSet(remaining)
        return True

    @property
    def knowledge(self) -> KnowledgeSet:
        return self._knowledge

    @property
    def fragment_count(self) -> int:
        return len(self._knowledge)

    @property
    def fragment_ids(self) -> frozenset[str]:
        return self._knowledge.fragment_ids

    def all_fragments(self) -> list[WorkflowFragment]:
        return list(self._knowledge)

    # -- query answering ---------------------------------------------------------
    def matching_fragments(self, query: FragmentQuery) -> list[WorkflowFragment]:
        """The fragments this host would return for ``query``."""

        if query.want_all:
            candidates = list(self._knowledge)
        else:
            by_id: dict[str, WorkflowFragment] = {}
            for label in query.consuming:
                for fragment in self._knowledge.fragments_consuming(label):
                    by_id[fragment.fragment_id] = fragment
            for label in query.producing:
                for fragment in self._knowledge.fragments_producing(label):
                    by_id[fragment.fragment_id] = fragment
            candidates = list(by_id.values())
        return [
            fragment
            for fragment in candidates
            if fragment.fragment_id not in query.exclude_fragment_ids
        ]

    def handle_query(self, query: FragmentQuery) -> FragmentResponse:
        """Build the wire response for an incoming know-how query."""

        self.queries_answered += 1
        fragments = tuple(self.matching_fragments(query))
        self.fragments_served += len(fragments)
        return FragmentResponse(
            sender=self.host_id,
            recipient=query.sender,
            fragments=fragments,
            workflow_id=query.workflow_id,
        )

    def __repr__(self) -> str:
        return f"FragmentManager(host={self.host_id!r}, fragments={len(self._knowledge)})"
