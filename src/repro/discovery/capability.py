"""Capability discovery: which hosts can perform which services.

During construction the Workflow Manager may issue capability queries to
learn whether *anyone* in the community can perform the services a
candidate workflow needs; the Service Manager on each host answers them
(paper, Figure 3: "Service Feasibility Messages").  The
:class:`CapabilityDirectory` is the initiator-side cache of those answers.
It is also used by the context-sensitivity examples: when no host offers a
"serve tables" service, the directory shows the capability as unavailable
and the constructed workflow falls back to buffet service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..net.messages import CapabilityQuery, CapabilityResponse


@dataclass
class CapabilityDirectory:
    """Initiator-side knowledge of who offers which service types."""

    providers: dict[str, set[str]] = field(default_factory=dict)
    """Mapping from service type to the hosts known to offer it."""

    responses_received: int = 0

    # -- updates ---------------------------------------------------------------
    def record_response(self, response: CapabilityResponse) -> None:
        """Merge a host's capability answer into the directory."""

        self.responses_received += 1
        for service_type in response.offered:
            self.providers.setdefault(service_type, set()).add(response.sender)

    def record_offering(self, host_id: str, service_types: Iterable[str]) -> None:
        """Record locally known capabilities (e.g. the initiator's own services)."""

        for service_type in service_types:
            self.providers.setdefault(service_type, set()).add(host_id)

    def forget_host(self, host_id: str) -> None:
        """Remove a departed host from every capability entry."""

        for hosts in self.providers.values():
            hosts.discard(host_id)

    # -- queries -----------------------------------------------------------------
    def hosts_providing(self, service_type: str) -> frozenset[str]:
        return frozenset(self.providers.get(service_type, ()))

    def is_available(self, service_type: str) -> bool:
        """True when at least one known host offers ``service_type``."""

        return bool(self.providers.get(service_type))

    def available_service_types(self) -> frozenset[str]:
        """Every service type at least one known host offers."""

        return frozenset(s for s, hosts in self.providers.items() if hosts)

    def unavailable_services(self, required: Iterable[str]) -> frozenset[str]:
        """The subset of ``required`` service types nobody in the community offers."""

        return frozenset(s for s in required if not self.is_available(s))

    def coverage(self, required: Iterable[str]) -> Mapping[str, frozenset[str]]:
        """For each required service type, the hosts able to provide it."""

        return {s: self.hosts_providing(s) for s in required}

    def __repr__(self) -> str:
        return f"CapabilityDirectory(service_types={len(self.providers)})"


def make_capability_query(
    sender: str, recipient: str, service_types: Iterable[str], workflow_id: str = ""
) -> CapabilityQuery:
    """Convenience constructor for the wire query."""

    return CapabilityQuery(
        sender=sender,
        recipient=recipient,
        service_types=frozenset(service_types),
        workflow_id=workflow_id,
    )
