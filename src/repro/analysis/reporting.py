"""Formatting experiment results as the paper's figures report them.

Each of Figures 4-6 plots "average time to full allocation" (y axis, in
seconds) against "path length" (x axis) with one series per configuration
(number of hosts or supergraph size).  :class:`FigureSeries` and
:class:`FigureResult` hold exactly that structure and can render themselves
as aligned text tables or CSV so the reproduction's output can be compared
side by side with the published curves.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .stats import SampleSummary, summarise


@dataclass
class FigureSeries:
    """One curve of a figure: a label plus samples per x value."""

    label: str
    samples: dict[int, list[float]] = field(default_factory=dict)

    def add_sample(self, x: int, value: float) -> None:
        self.samples.setdefault(x, []).append(value)

    def summary(self, x: int) -> SampleSummary | None:
        values = self.samples.get(x)
        return summarise(values) if values else None

    def mean(self, x: int) -> float | None:
        values = self.samples.get(x)
        return sum(values) / len(values) if values else None

    def xs(self) -> list[int]:
        return sorted(self.samples)

    def as_points(self) -> list[tuple[int, float]]:
        return [(x, self.mean(x)) for x in self.xs() if self.mean(x) is not None]


@dataclass
class FigureResult:
    """A full figure: title, axis names, and one series per configuration."""

    title: str
    x_label: str = "Path length"
    y_label: str = "Seconds"
    series: dict[str, FigureSeries] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    def series_for(self, label: str) -> FigureSeries:
        if label not in self.series:
            self.series[label] = FigureSeries(label)
        return self.series[label]

    def add_sample(self, label: str, x: int, value: float) -> None:
        self.series_for(label).add_sample(x, value)

    def add_samples(self, label: str, x: int, values: Iterable[float]) -> None:
        """Append a batch of samples to one point (used by the parallel
        experiment runner's ordered aggregation)."""

        series = self.series_for(label)
        for value in values:
            series.add_sample(x, value)

    def all_xs(self) -> list[int]:
        xs: set[int] = set()
        for series in self.series.values():
            xs.update(series.xs())
        return sorted(xs)

    # -- rendering -----------------------------------------------------------
    def to_table(self, precision: int = 4) -> str:
        """Render the figure as an aligned text table (rows = x values)."""

        labels = list(self.series)
        buffer = io.StringIO()
        buffer.write(f"{self.title}\n")
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items()))
            buffer.write(f"({meta})\n")
        header = [self.x_label] + labels
        rows: list[list[str]] = [header]
        for x in self.all_xs():
            row = [str(x)]
            for label in labels:
                value = self.series[label].mean(x)
                row.append("-" if value is None else f"{value:.{precision}f}")
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        for row in rows:
            line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            buffer.write(line + "\n")
        return buffer.getvalue()

    def to_csv(self, precision: int = 6) -> str:
        """Render the figure as CSV (x value, then one column per series)."""

        labels = list(self.series)
        lines = [",".join([self.x_label.replace(",", " ")] + labels)]
        for x in self.all_xs():
            cells = [str(x)]
            for label in labels:
                value = self.series[label].mean(x)
                cells.append("" if value is None else f"{value:.{precision}f}")
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict[str, object]:
        return {
            "title": self.title,
            "metadata": dict(self.metadata),
            "series": {
                label: {str(x): series.mean(x) for x in series.xs()}
                for label, series in self.series.items()
            },
        }


def traffic_table(
    statistics: Mapping[str, object], title: str = "Traffic by message kind"
) -> str:
    """Render a transport-statistics dict as a per-kind count/bytes table.

    ``statistics`` is the output of
    :meth:`~repro.net.transport.TransportStatistics.as_dict`; the table has
    one row per message kind (sorted by bytes, heaviest first) plus a total
    row, so a trial summary shows at a glance where the traffic went — and,
    for repeat workflows on a shared knowledge plane, how much fragment
    transfer was saved.  The ``dropped`` column counts sends that never
    reached a handler (unreachable recipients, fault-plane drops), broken
    down per kind so a churn run shows *which* protocol paid for the
    hostile network.
    """

    by_kind = statistics.get("by_kind", {})
    bytes_by_kind = statistics.get("bytes_by_kind", {})
    dropped_by_kind = statistics.get("dropped_by_kind", {})
    assert isinstance(by_kind, Mapping) and isinstance(bytes_by_kind, Mapping)
    assert isinstance(dropped_by_kind, Mapping)
    rows: list[list[str]] = [["kind", "messages", "bytes", "dropped"]]
    kinds = sorted(
        set(by_kind) | set(bytes_by_kind) | set(dropped_by_kind),
        key=lambda kind: (-int(bytes_by_kind.get(kind, 0)), kind),
    )
    for kind in kinds:
        rows.append(
            [
                kind,
                str(by_kind.get(kind, 0)),
                str(bytes_by_kind.get(kind, 0)),
                str(dropped_by_kind.get(kind, 0)),
            ]
        )
    rows.append(
        [
            "total",
            str(statistics.get("messages_sent", 0)),
            str(statistics.get("bytes_sent", 0)),
            str(statistics.get("messages_dropped", 0)),
        ]
    )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = [title]
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(width) if i == 0 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines) + "\n"


def comparison_table(
    title: str,
    rows: Iterable[tuple[str, Mapping[str, object]]],
    columns: list[str],
) -> str:
    """Render a simple comparison table (used by the ablation reports)."""

    header = ["configuration"] + columns
    table_rows: list[list[str]] = [header]
    for name, values in rows:
        table_rows.append(
            [name] + [str(values.get(column, "-")) for column in columns]
        )
    widths = [max(len(row[i]) for row in table_rows) for i in range(len(header))]
    lines = [title]
    for row in table_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines) + "\n"
