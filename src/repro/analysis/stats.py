"""Small statistics helpers used by the experiment harness.

The paper reports the average of one thousand runs per data point.  The
harness keeps every sample and reports mean, standard deviation, and simple
confidence intervals so a reproduction run can tell whether an observed
difference between two configurations is noise or signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a set of timing samples (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Approximate CI of the mean (normal approximation)."""

        if self.count <= 1:
            return (self.mean, self.mean)
        half_width = z * self.std / math.sqrt(self.count)
        return (self.mean - half_width, self.mean + half_width)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarise(samples: Sequence[float]) -> SampleSummary:
    """Compute summary statistics of ``samples`` (raises on empty input)."""

    if not samples:
        raise ValueError("cannot summarise an empty sample set")
    ordered = sorted(samples)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = (
        sum((x - mean) ** 2 for x in ordered) / (count - 1) if count > 1 else 0.0
    )
    mid = count // 2
    if count % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    return SampleSummary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )


def mean(samples: Iterable[float]) -> float:
    values = list(samples)
    if not values:
        raise ValueError("cannot average an empty sample set")
    return sum(values) / len(values)


def linear_trend(points: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """Least-squares slope and intercept of ``(x, y)`` points.

    Used by tests to check qualitative claims such as "the average time
    grows roughly linearly with the number of hosts".
    """

    if len(points) < 2:
        raise ValueError("need at least two points for a trend")
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise ValueError("degenerate x values; cannot fit a trend")
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    intercept = (sum_y - slope * sum_x) / n
    return slope, intercept


def pearson_correlation(points: Sequence[tuple[float, float]]) -> float:
    """Pearson correlation coefficient of ``(x, y)`` points."""

    if len(points) < 2:
        raise ValueError("need at least two points for a correlation")
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    var_y = sum((y - mean_y) ** 2 for _, y in points)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
