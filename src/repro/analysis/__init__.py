"""Analysis helpers: statistics and figure/table rendering for experiments."""

from .reporting import FigureResult, FigureSeries, comparison_table, traffic_table
from .stats import SampleSummary, linear_trend, mean, pearson_correlation, summarise

__all__ = [
    "FigureResult",
    "FigureSeries",
    "SampleSummary",
    "comparison_table",
    "linear_trend",
    "mean",
    "pearson_correlation",
    "summarise",
    "traffic_table",
]
