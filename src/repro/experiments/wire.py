"""Versioned, pickle-free wire codec for the distributed dispatch plane.

The dispatch protocol (:mod:`repro.experiments.dispatch`) moves trial
assignments and results between machines, so its frames cannot be pickled:
unpickling executes arbitrary code from the peer, and a pickle stream is
tied to the Python version and class layout of whoever produced it.  This
module supplies the alternative — a small, explicit, *self-describing*
serialisation with a schema version byte, in two layers:

* A **value codec** (:func:`encode_value` / :func:`decode_value`): a tagged
  binary encoding of ``None``, booleans, integers (any magnitude), IEEE-754
  doubles (bit-exact — byte-identity of ``TrialResult`` floats survives the
  round trip), UTF-8 strings, byte strings, lists, and string-keyed dicts.
  Nothing else: an unsupported type is a :class:`WireError` at encode time,
  never a silent coercion.

* A **frame codec**: each protocol message is a dataclass with a one-byte
  frame type; :func:`encode_frame` wraps its field dict as
  ``magic(2) | version(1) | type(1) | length(u32) | crc32(u32) | payload``
  and :class:`FrameDecoder` reassembles frames from an arbitrary stream of
  chunks, rejecting bad magic, unknown schema versions, unknown frame
  types, oversized declarations, and CRC mismatches with a clear
  :class:`WireError`.  Truncation is not an error for the stream decoder —
  it simply waits for more bytes — but :func:`decode_frame` (the one-shot
  form) rejects incomplete buffers.

Version discipline: ``WIRE_VERSION`` is bumped on any incompatible frame
or value change; a decoder refuses frames from a different version instead
of guessing (the coordinator and workers then report the mismatch and the
operator upgrades one side).  The tagged-struct encoding here is also the
groundwork the durable plane's cross-process tier needs to drop its
pickled record tuples (see ROADMAP).

``TrialTask`` and ``TrialResult`` are flat dataclasses of plain scalars,
so they cross as field dicts (:func:`task_to_wire` / :func:`task_from_wire`,
:func:`result_to_wire` / :func:`result_from_wire`); unknown fields from a
same-version peer are rejected rather than dropped, so a drifted build
fails loudly.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from dataclasses import dataclass, fields
from typing import Iterator

from .trials import TrialResult

WIRE_MAGIC = b"RW"
WIRE_VERSION = 1
HEADER = struct.Struct(">2sBBII")  # magic, version, frame type, length, crc32
MAX_FRAME_BYTES = 256 * 1024 * 1024  # refuse absurd length declarations


class WireError(ValueError):
    """A malformed, corrupt, or incompatible wire payload."""


# --------------------------------------------------------------------------
# value codec
# --------------------------------------------------------------------------

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"  # signed 64-bit
_T_BIGINT = b"J"  # length-prefixed signed big-endian (beyond 64 bits)
_T_FLOAT = b"D"  # IEEE-754 double, big-endian: bit-exact round trip
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_DICT = b"M"

_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


def encode_value(value: object) -> bytes:
    """Encode one supported value as tagged bytes (see module docstring)."""

    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: object, out: bytearray) -> None:
    if value is None:
        out += _T_NONE
    elif value is True:
        out += _T_TRUE
    elif value is False:
        out += _T_FALSE
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out += _T_INT
            out += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out += _T_BIGINT
            out += _U32.pack(len(raw))
            out += raw
    elif type(value) is float:
        out += _T_FLOAT
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out += _T_STR
        out += _U32.pack(len(raw))
        out += raw
    elif type(value) in (bytes, bytearray, memoryview):
        raw = bytes(value)
        out += _T_BYTES
        out += _U32.pack(len(raw))
        out += raw
    elif type(value) in (list, tuple):
        out += _T_LIST
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out)
    elif type(value) is dict:
        out += _T_DICT
        out += _U32.pack(len(value))
        for key in value:
            if type(key) is not str:
                raise WireError(
                    f"wire dicts take str keys, not {type(key).__name__}"
                )
        for key, item in value.items():
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
            _encode_into(item, out)
    else:
        raise WireError(f"cannot encode {type(value).__name__} on the wire")


def decode_value(data: bytes | memoryview) -> object:
    """Decode one value, rejecting trailing bytes (frames are exact)."""

    view = memoryview(data)
    value, consumed = _decode_from(view, 0)
    if consumed != len(view):
        raise WireError(
            f"{len(view) - consumed} trailing bytes after wire value"
        )
    return value


def _need(view: memoryview, offset: int, count: int) -> None:
    if offset + count > len(view):
        raise WireError("truncated wire value")


def _decode_from(view: memoryview, offset: int) -> tuple[object, int]:
    _need(view, offset, 1)
    tag = bytes(view[offset : offset + 1])
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        _need(view, offset, 8)
        return _I64.unpack_from(view, offset)[0], offset + 8
    if tag == _T_FLOAT:
        _need(view, offset, 8)
        return _F64.unpack_from(view, offset)[0], offset + 8
    if tag in (_T_BIGINT, _T_STR, _T_BYTES):
        _need(view, offset, 4)
        length = _U32.unpack_from(view, offset)[0]
        offset += 4
        _need(view, offset, length)
        raw = bytes(view[offset : offset + length])
        offset += length
        if tag == _T_BIGINT:
            return int.from_bytes(raw, "big", signed=True), offset
        if tag == _T_STR:
            try:
                return raw.decode("utf-8"), offset
            except UnicodeDecodeError as exc:
                raise WireError(f"invalid UTF-8 in wire string: {exc}") from exc
        return raw, offset
    if tag == _T_LIST:
        _need(view, offset, 4)
        count = _U32.unpack_from(view, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(view, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        _need(view, offset, 4)
        count = _U32.unpack_from(view, offset)[0]
        offset += 4
        mapping: dict[str, object] = {}
        for _ in range(count):
            _need(view, offset, 4)
            key_len = _U32.unpack_from(view, offset)[0]
            offset += 4
            _need(view, offset, key_len)
            try:
                key = bytes(view[offset : offset + key_len]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireError(f"invalid UTF-8 in wire key: {exc}") from exc
            offset += key_len
            item, offset = _decode_from(view, offset)
            mapping[key] = item
        return mapping, offset
    raise WireError(f"unknown wire value tag {tag!r}")


# --------------------------------------------------------------------------
# frames
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Worker → coordinator: identify and declare capacity."""

    TYPE = 1

    worker_id: str
    max_inflight: int
    pool_workers: int = 0


@dataclass(frozen=True)
class WorkloadSegment:
    """Coordinator → worker: one sweep's deduplicated workload payload.

    ``payload`` is the exact framed segment encoding of
    :func:`repro.experiments.shared_inputs.encode_workloads` (zlib inside),
    sent **once per worker per sweep** and re-published by the worker into
    its own local shared memory; ``raw_bytes`` is the unframed pickled size
    for the dedup/compression accounting.
    """

    TYPE = 2

    sweep_id: int
    payload: bytes
    raw_bytes: int


@dataclass(frozen=True)
class TrialAssign:
    """Coordinator → worker: run this task and report back."""

    TYPE = 3

    sweep_id: int
    task_index: int
    timing: str
    task: dict


@dataclass(frozen=True)
class TrialResultMsg:
    """Worker → coordinator: one finished trial (``result=None``: no spec)."""

    TYPE = 4

    sweep_id: int
    task_index: int
    worker_id: str
    result: dict | None


@dataclass(frozen=True)
class Heartbeat:
    """Worker → coordinator: liveness beacon with current load."""

    TYPE = 5

    worker_id: str
    inflight: int


@dataclass(frozen=True)
class Goodbye:
    """Either direction: orderly teardown (never required — crashes happen)."""

    TYPE = 6

    reason: str = ""


Frame = Hello | WorkloadSegment | TrialAssign | TrialResultMsg | Heartbeat | Goodbye

FRAME_TYPES: dict[int, type] = {
    cls.TYPE: cls
    for cls in (Hello, WorkloadSegment, TrialAssign, TrialResultMsg, Heartbeat, Goodbye)
}


def encode_frame(frame: Frame) -> bytes:
    """Serialise one frame: header, CRC, tagged field-dict payload."""

    frame_type = getattr(type(frame), "TYPE", None)
    if frame_type not in FRAME_TYPES or type(frame) is not FRAME_TYPES[frame_type]:
        raise WireError(f"not a wire frame: {type(frame).__name__}")
    payload = encode_value(dataclasses.asdict(frame))
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds cap")
    header = HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, frame_type, len(payload), zlib.crc32(payload)
    )
    return header + payload


def _build_frame(frame_type: int, payload: bytes) -> Frame:
    cls = FRAME_TYPES.get(frame_type)
    if cls is None:
        raise WireError(f"unknown frame type {frame_type}")
    mapping = decode_value(payload)
    if type(mapping) is not dict:
        raise WireError(f"frame {cls.__name__} payload is not a field dict")
    names = {field.name for field in fields(cls)}
    unknown = set(mapping) - names
    if unknown:
        raise WireError(
            f"frame {cls.__name__} carries unknown fields {sorted(unknown)}"
        )
    missing = {
        field.name
        for field in fields(cls)
        if field.default is dataclasses.MISSING
    } - set(mapping)
    if missing:
        raise WireError(
            f"frame {cls.__name__} is missing fields {sorted(missing)}"
        )
    try:
        return cls(**mapping)
    except TypeError as exc:  # pragma: no cover - guarded above
        raise WireError(f"malformed {cls.__name__} frame: {exc}") from exc


def decode_frame(data: bytes) -> Frame:
    """One-shot decode of exactly one frame (truncation/trailing rejected)."""

    decoder = FrameDecoder()
    frames = decoder.feed(data)
    if not frames and decoder.pending_bytes:
        raise WireError("truncated frame")
    if len(frames) != 1 or decoder.pending_bytes:
        raise WireError("expected exactly one frame")
    return frames[0]


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunk stream.

    ``feed(chunk)`` returns every frame completed by that chunk (possibly
    none, possibly several).  A partial frame is buffered until its bytes
    arrive; a *malformed* frame — bad magic, wrong schema version, unknown
    type, oversize declaration, CRC mismatch — raises :class:`WireError`
    and poisons the decoder (framing is lost; the connection must drop).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""

        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Frame]:
        if self._poisoned:
            raise WireError("decoder poisoned by an earlier framing error")
        self._buffer += chunk
        frames: list[Frame] = []
        try:
            while True:
                frame = self._next_frame()
                if frame is None:
                    return frames
                frames.append(frame)
        except WireError:
            self._poisoned = True
            raise

    def _next_frame(self) -> Frame | None:
        if len(self._buffer) < HEADER.size:
            return None
        magic, version, frame_type, length, crc = HEADER.unpack_from(self._buffer)
        if magic != WIRE_MAGIC:
            raise WireError(f"bad frame magic {bytes(magic)!r}")
        if version != WIRE_VERSION:
            raise WireError(
                f"unsupported wire version {version} (this side speaks "
                f"{WIRE_VERSION})"
            )
        if frame_type not in FRAME_TYPES:
            raise WireError(f"unknown frame type {frame_type}")
        if length > MAX_FRAME_BYTES:
            raise WireError(f"declared frame length {length} exceeds cap")
        if len(self._buffer) < HEADER.size + length:
            return None
        payload = bytes(self._buffer[HEADER.size : HEADER.size + length])
        del self._buffer[: HEADER.size + length]
        if zlib.crc32(payload) != crc:
            raise WireError("frame CRC mismatch (corrupt payload)")
        return _build_frame(frame_type, payload)


def iter_frames(data: bytes) -> Iterator[Frame]:
    """Decode a byte string holding zero or more complete frames."""

    decoder = FrameDecoder()
    yield from decoder.feed(data)
    if decoder.pending_bytes:
        raise WireError("truncated trailing frame")


# --------------------------------------------------------------------------
# task / result field dicts
# --------------------------------------------------------------------------


def task_to_wire(task: "TrialTask") -> dict:  # noqa: F821 - runner import cycle
    """A ``TrialTask`` as a plain field dict (all fields are wire scalars)."""

    return dataclasses.asdict(task)


def task_from_wire(mapping: dict) -> "TrialTask":  # noqa: F821
    from .runner import TrialTask  # deferred: runner imports dispatch lazily

    return _from_field_dict(TrialTask, mapping)


def result_to_wire(result: TrialResult | None) -> dict | None:
    """A ``TrialResult`` as a plain field dict (``None`` passes through)."""

    return None if result is None else dataclasses.asdict(result)


def result_from_wire(mapping: dict | None) -> TrialResult | None:
    return None if mapping is None else _from_field_dict(TrialResult, mapping)


def _from_field_dict(cls: type, mapping: dict) -> object:
    if type(mapping) is not dict:
        raise WireError(f"{cls.__name__} payload is not a field dict")
    names = {field.name for field in fields(cls)}
    unknown = set(mapping) - names
    if unknown:
        raise WireError(
            f"{cls.__name__} carries unknown fields {sorted(unknown)}"
        )
    try:
        return cls(**mapping)
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed {cls.__name__}: {exc}") from exc
