"""Distributed trial dispatch: a socket fan-out plane for ``TrialRunner``.

One machine's cores bound every figure sweep until now; this module lifts
the runner's fan-out onto TCP so a sweep spans a fleet.  The shape is the
classic coordinator/worker split:

* :class:`DispatchCoordinator` — an asyncio TCP server owned by the
  runner.  It speaks the length-framed, CRC-checked, versioned protocol of
  :mod:`repro.experiments.wire` (``Hello`` / ``WorkloadSegment`` /
  ``TrialAssign`` / ``TrialResultMsg`` / ``Heartbeat`` / ``Goodbye``), runs
  on a background thread, and exposes one synchronous call —
  :meth:`DispatchCoordinator.run_sweep` — that blocks until every task of
  the sweep is accounted for.

* Workers (:mod:`repro.experiments.worker`, the ``repro-trial-worker``
  CLI) connect, receive each sweep's deduplicated workload payload **once**
  (the framed segment encoding of
  :mod:`repro.experiments.shared_inputs`, zlib inside — re-published into
  the worker's own local shared memory for its process pool), and stream
  back results as trials finish.

Scheduling is work-stealing in effect: tasks are assigned in task order,
one at a time, to whichever connected worker currently has the most free
in-flight capacity, and every completion immediately pulls the next
pending task — a fast worker drains the queue while a slow one chews.
Results are keyed by task index and returned in task order, so aggregation
is byte-identical to the local runner under ``timing="sim"`` (trials are
order- and placement-independent by the runner's determinism contract).

Failure model: a worker is *dead* when its connection drops or its
heartbeats go silent past ``heartbeat_timeout``.  Its in-flight tasks go
back to the *front* of the pending queue for the survivors
(``trials_reassigned``); when no workers remain the sweep returns early
with the unfinished tasks marked ``None`` and the runner finishes them on
the local pool — the last-resort fallback — or, with fallback disabled,
raises :class:`DispatchError` instead of hanging.  A sweep on a
coordinator that never hears from any worker within ``start_timeout``
raises :class:`DispatchError` with the address it was listening on.

A duplicate ``TrialResultMsg`` (a worker declared dead by a late heartbeat
while its result was in flight, then the task re-run elsewhere) is
harmless: results are keyed by task index and identical by determinism, so
the first write wins and the duplicate is dropped.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from dataclasses import dataclass

from . import wire

DEFAULT_PORT = 7209


class DispatchError(RuntimeError):
    """The dispatch plane cannot make progress (never a silent hang)."""


def parse_dispatch_address(address: str) -> tuple[str, int]:
    """Parse ``tcp://host:port`` (port 0 = ephemeral, for tests/demos)."""

    if not address.startswith("tcp://"):
        raise ValueError(
            f"dispatch address must look like tcp://host:port, got {address!r}"
        )
    rest = address[len("tcp://") :]
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"dispatch address must name host and port, got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid dispatch port in {address!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"dispatch port out of range in {address!r}")
    return host, port


@dataclass
class SweepReport:
    """What one dispatched sweep actually did on the wire.

    ``outcomes`` is in task order; ``None`` marks a task no worker
    finished (the runner's local fallback picks those up).
    """

    outcomes: list["object | None"]
    workers_used: int = 0
    workers_lost: int = 0
    trials_reassigned: int = 0
    segments_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class _Worker:
    """Coordinator-side view of one connected worker."""

    def __init__(
        self,
        worker_id: str,
        writer: asyncio.StreamWriter,
        max_inflight: int,
        connect_order: int,
    ) -> None:
        self.worker_id = worker_id
        self.writer = writer
        self.max_inflight = max(1, max_inflight)
        self.connect_order = connect_order
        self.inflight: set[int] = set()  # task indexes assigned, unanswered
        self.last_heard = 0.0
        self.segments_sent: set[int] = set()  # sweep ids already shipped
        self.alive = True

    @property
    def free_capacity(self) -> int:
        return self.max_inflight - len(self.inflight)


class _Sweep:
    """One ``run_sweep`` call's mutable scheduling state (loop thread only)."""

    def __init__(
        self, sweep_id: int, tasks: list, timing: str, payload: bytes, raw_bytes: int
    ) -> None:
        self.sweep_id = sweep_id
        self.tasks = tasks
        self.timing = timing
        self.payload = payload
        self.raw_bytes = raw_bytes
        self.pending: deque[int] = deque(range(len(tasks)))
        self.results: dict[int, object] = {}
        self.report = SweepReport(outcomes=[None] * len(tasks))
        self.done = asyncio.Event()
        self.workers_seen: set[str] = set()

    @property
    def finished(self) -> bool:
        return len(self.results) == len(self.tasks)


class DispatchCoordinator:
    """Serve trial sweeps to socket workers (see module docstring).

    The coordinator owns a private asyncio loop on a daemon thread, so the
    synchronous ``TrialRunner`` drives it like any other executor.  One
    coordinator serves many sweeps back to back; workers may outlive
    sweeps and are greeted with the next sweep's workload when it starts.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        heartbeat_timeout: float = 10.0,
        start_timeout: float = 30.0,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.requested_host = host
        self.requested_port = port
        self.heartbeat_timeout = heartbeat_timeout
        self.start_timeout = start_timeout
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._closed = False
        # Loop-thread state:
        self._handlers: set[asyncio.Task] = set()
        self._client_writers: set[asyncio.StreamWriter] = set()
        self._workers: dict[str, _Worker] = {}
        self._connect_counter = itertools.count()
        self._sweep_counter = itertools.count(1)
        self._sweep: _Sweep | None = None
        self._worker_arrived: asyncio.Event | None = None
        self._reaper: asyncio.Task | None = None

    # -- lifecycle (caller thread) ------------------------------------------
    @property
    def address(self) -> str:
        """The bound ``tcp://host:port`` (available after :meth:`start`)."""

        if self.port is None:
            raise DispatchError("coordinator is not started")
        return f"tcp://{self.host}:{self.port}"

    def start(self) -> "DispatchCoordinator":
        """Bind the server and start the loop thread (idempotent)."""

        if self._closed:
            raise DispatchError("coordinator has been closed")
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="dispatch-coordinator", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            error, self._thread = self._start_error, None
            self._start_error = None
            self._started.clear()
            raise DispatchError(
                f"cannot listen on tcp://{self.requested_host}:"
                f"{self.requested_port}: {error}"
            ) from error
        return self

    def close(self) -> None:
        """Say goodbye to every worker and stop the server (idempotent)."""

        self._closed = True
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(timeout=10)
        thread.join(timeout=10)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "DispatchCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._worker_arrived = asyncio.Event()
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_client, self.requested_host, self.requested_port
                )
            )
        except BaseException as exc:  # bind failure: surface to start()
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._reaper = loop.create_task(self._reap_silent_workers())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
        for worker in list(self._workers.values()):
            await self._send(worker, wire.Goodbye(reason="coordinator shutdown"))
            worker.writer.close()
        self._workers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sweep is not None and not self._sweep.done.is_set():
            self._sweep.done.set()
        if self._reaper is not None:
            await asyncio.gather(self._reaper, return_exceptions=True)
        # Client handlers see EOF from the closed transports and finish on
        # their own; cancelling them instead would trip asyncio.streams'
        # connection_made callback, which retrieves each handler's result.
        for client in list(self._client_writers):
            client.close()
        if self._handlers:
            await asyncio.wait(self._handlers, timeout=5)
        loop = asyncio.get_running_loop()
        loop.call_soon(loop.stop)

    # -- sweep API (caller thread) ------------------------------------------
    def run_sweep(
        self,
        tasks: list,
        timing: str,
        payload: bytes,
        raw_bytes: int,
        start_timeout: float | None = None,
    ) -> SweepReport:
        """Dispatch the tasks and block until the sweep settles.

        Returns a :class:`SweepReport` whose ``outcomes`` list is in task
        order; entries left ``None`` (all workers died) are the caller's
        to finish locally.  Raises :class:`DispatchError` when no worker
        ever connects within ``start_timeout`` seconds.
        """

        self.start()
        assert self._loop is not None
        timeout = self.start_timeout if start_timeout is None else start_timeout
        future = asyncio.run_coroutine_threadsafe(
            self._run_sweep(list(tasks), timing, payload, raw_bytes, timeout),
            self._loop,
        )
        return future.result()

    # -- sweep engine (loop thread) -----------------------------------------
    async def _run_sweep(
        self,
        tasks: list,
        timing: str,
        payload: bytes,
        raw_bytes: int,
        start_timeout: float,
    ) -> SweepReport:
        if self._sweep is not None:
            raise DispatchError("a sweep is already running on this coordinator")
        sweep = _Sweep(next(self._sweep_counter), tasks, timing, payload, raw_bytes)
        if not tasks:
            return sweep.report
        self._sweep = sweep
        try:
            if not self._workers:
                assert self._worker_arrived is not None
                self._worker_arrived.clear()
                try:
                    await asyncio.wait_for(
                        self._worker_arrived.wait(), timeout=start_timeout
                    )
                except asyncio.TimeoutError:
                    raise DispatchError(
                        f"no worker connected to {self.address} within "
                        f"{start_timeout:.1f}s; start repro-trial-worker "
                        f"{self.address} (or drop dispatch= for the local pool)"
                    ) from None
            for worker in list(self._workers.values()):
                await self._greet_worker_for_sweep(worker, sweep)
            await self._pump()
            await sweep.done.wait()
        finally:
            self._sweep = None
        for index, result in sweep.results.items():
            sweep.report.outcomes[index] = result
        sweep.report.workers_used = len(sweep.workers_seen)
        return sweep.report

    async def _greet_worker_for_sweep(self, worker: _Worker, sweep: _Sweep) -> None:
        """Ship the sweep's workload payload — once per worker per sweep."""

        if not worker.alive or sweep.sweep_id in worker.segments_sent:
            return
        worker.segments_sent.add(sweep.sweep_id)
        sweep.workers_seen.add(worker.worker_id)
        sweep.report.segments_sent += 1
        await self._send(
            worker,
            wire.WorkloadSegment(
                sweep_id=sweep.sweep_id,
                payload=sweep.payload,
                raw_bytes=sweep.raw_bytes,
            ),
        )

    async def _pump(self) -> None:
        """Assign pending tasks: next task to the freest connected worker."""

        sweep = self._sweep
        if sweep is None:
            return
        while sweep.pending:
            candidates = [
                worker
                for worker in self._workers.values()
                if worker.alive and worker.free_capacity > 0
            ]
            if not candidates:
                return
            worker = max(
                candidates,
                key=lambda w: (w.free_capacity, -w.connect_order),
            )
            index = sweep.pending.popleft()
            worker.inflight.add(index)
            await self._greet_worker_for_sweep(worker, sweep)
            await self._send(
                worker,
                wire.TrialAssign(
                    sweep_id=sweep.sweep_id,
                    task_index=index,
                    timing=sweep.timing,
                    task=wire.task_to_wire(sweep.tasks[index]),
                ),
            )

    def _settle_if_starved(self) -> None:
        """End the sweep early when nothing can make progress any more."""

        sweep = self._sweep
        if sweep is None or sweep.done.is_set():
            return
        if sweep.finished:
            sweep.done.set()
            return
        if not any(worker.alive for worker in self._workers.values()):
            # Unfinished tasks stay None in the report; the runner's local
            # fallback finishes them (or raises, with fallback disabled).
            sweep.done.set()

    # -- connection handling (loop thread) ----------------------------------
    async def _send(self, worker: _Worker, frame: wire.Frame) -> None:
        if not worker.alive:
            return
        try:
            data = wire.encode_frame(frame)
            worker.writer.write(data)
            await worker.writer.drain()
            if self._sweep is not None:
                self._sweep.report.bytes_sent += len(data)
        except (ConnectionError, OSError):
            await self._bury_worker(worker, "send failed")

    async def _bury_worker(self, worker: _Worker, reason: str) -> None:
        """Declare a worker dead and requeue its in-flight tasks first."""

        if not worker.alive:
            return
        worker.alive = False
        self._workers.pop(worker.worker_id, None)
        try:
            worker.writer.close()
        except Exception:  # pragma: no cover - already torn down
            pass
        sweep = self._sweep
        if sweep is not None and not sweep.done.is_set():
            if worker.worker_id in sweep.workers_seen:
                sweep.report.workers_lost += 1
            orphans = sorted(
                index for index in worker.inflight if index not in sweep.results
            )
            for index in reversed(orphans):
                sweep.pending.appendleft(index)
            sweep.report.trials_reassigned += len(orphans)
            worker.inflight.clear()
            await self._pump()
            self._settle_if_starved()

    async def _reap_silent_workers(self) -> None:
        """Heartbeat watchdog: bury workers silent past the timeout."""

        interval = max(self.heartbeat_timeout / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for worker in list(self._workers.values()):
                if now - worker.last_heard > self.heartbeat_timeout:
                    await self._bury_worker(worker, "heartbeat timeout")

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
            task.add_done_callback(lambda _t: self._client_writers.discard(writer))
        self._client_writers.add(writer)
        if self._closed:
            writer.close()
            return
        decoder = wire.FrameDecoder()
        worker: _Worker | None = None
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                if self._sweep is not None:
                    self._sweep.report.bytes_received += len(chunk)
                try:
                    frames = decoder.feed(chunk)
                except wire.WireError:
                    # Framing is unrecoverable on this connection; a fresh
                    # worker process reconnects with clean state.
                    break
                for frame in frames:
                    worker = await self._handle_frame(frame, writer, worker)
        except (ConnectionError, OSError):
            pass
        finally:
            if worker is not None:
                await self._bury_worker(worker, "connection closed")
            else:
                try:
                    writer.close()
                except Exception:  # pragma: no cover
                    pass

    async def _handle_frame(
        self,
        frame: wire.Frame,
        writer: asyncio.StreamWriter,
        worker: _Worker | None,
    ) -> _Worker | None:
        now = asyncio.get_running_loop().time()
        if isinstance(frame, wire.Hello):
            previous = self._workers.get(frame.worker_id)
            if previous is not None:
                await self._bury_worker(previous, "replaced by reconnect")
            worker = _Worker(
                frame.worker_id,
                writer,
                frame.max_inflight,
                next(self._connect_counter),
            )
            worker.last_heard = now
            self._workers[frame.worker_id] = worker
            assert self._worker_arrived is not None
            self._worker_arrived.set()
            if self._sweep is not None and not self._sweep.done.is_set():
                await self._greet_worker_for_sweep(worker, self._sweep)
                await self._pump()
            return worker
        if worker is None or not worker.alive:
            return worker  # frames before Hello (or after death): ignored
        worker.last_heard = now
        if isinstance(frame, wire.Heartbeat):
            return worker
        if isinstance(frame, wire.TrialResultMsg):
            await self._handle_result(frame, worker)
            return worker
        if isinstance(frame, wire.Goodbye):
            await self._bury_worker(worker, frame.reason or "worker goodbye")
            return None
        return worker

    async def _handle_result(self, frame: wire.TrialResultMsg, worker: _Worker) -> None:
        sweep = self._sweep
        if sweep is None or frame.sweep_id != sweep.sweep_id:
            return  # result for a finished sweep: stale, drop
        worker.inflight.discard(frame.task_index)
        if not 0 <= frame.task_index < len(sweep.tasks):
            return
        if frame.task_index not in sweep.results:
            from .runner import TrialOutcome  # deferred: runner ↔ dispatch

            sweep.results[frame.task_index] = TrialOutcome(
                task=sweep.tasks[frame.task_index],
                result=wire.result_from_wire(frame.result),
            )
        if sweep.finished:
            sweep.done.set()
            return
        await self._pump()
