"""A parallel experiment engine for independent ``(seed, config)`` trials.

The paper averages one thousand runs per figure point; every trial is an
independent discrete-event simulation, so the sweep is embarrassingly
parallel.  This module supplies the fan-out machinery the figure and
ablation drivers run on:

* :class:`TrialTask` — a *picklable, declarative* description of one trial:
  workload size and seed, host count, path length, repetition index,
  network kind, placement, solver, and auction policy.  Everything a worker
  needs to reconstruct the trial from scratch, so no live objects ever
  cross a process boundary.
* :func:`execute_trial` — turns a task into a
  :class:`~repro.experiments.trials.TrialResult`.  All randomness is
  derived from the task's fields via :func:`~repro.sim.randomness.derive_seed`,
  so a task executes identically wherever and in whatever order it runs.
* :class:`TrialRunner` — fans a task list across a
  ``ProcessPoolExecutor`` and returns outcomes *in task order*.  With
  ``parallel=False`` (or a single worker, or a pool that fails to start) it
  runs the exact same code path in-process; because per-trial seeding is
  order-independent, sequential and parallel execution produce the same
  results for the same tasks.

Determinism contract: everything in a ``TrialResult`` except the wall-clock
components (``wall_seconds`` and its contribution to
``allocation_seconds``) is a pure function of the task.  ``timing="sim"``
zeroes those components at the source, making the outcomes byte-identical
across runs and schedulers — the equivalence tests run in that mode, and so
can any experiment that only cares about simulated time.

Shared inputs: with ``shared_inputs=True`` (the default) a parallel run
first publishes the sweep's distinct generated workloads — its only large,
read-mostly input — into one :mod:`multiprocessing.shared_memory` segment
(:mod:`repro.experiments.shared_inputs`); each worker attaches once and
fills its per-process workload cache from the shared buffer instead of
regenerating every workload from its seed.  Sharing is purely a cache
warm-up, so outcomes are byte-identical with it on, off, or unavailable
(the segment falls away silently on platforms without shared memory).
``compress_shared=True`` (the default) zlib-compresses the segment payload
at level 1; ``bytes_shared_raw`` / ``bytes_shared_wire`` expose the ratio.

Distributed dispatch: ``TrialRunner(dispatch="tcp://host:port")`` is a
third execution mode beside inline and the process pool.  The runner binds
a :class:`~repro.experiments.dispatch.DispatchCoordinator` on that address
and fans the sweep across every ``repro-trial-worker`` process that
connects — each worker receives the sweep's deduplicated workload payload
once, re-publishes it into its own local shared memory, and streams
results back as trials finish.  Results aggregate in task order, so
``timing="sim"`` outcomes are byte-identical to the local runner; a dead
worker's in-flight trials are reassigned to the survivors
(``workers_lost`` / ``trials_reassigned``), and when every worker dies the
local pool finishes the remainder — or, with ``dispatch_fallback=False``,
a clear :class:`~repro.experiments.dispatch.DispatchError` is raised
instead of hanging.
"""

from __future__ import annotations

import math
import os
import pickle
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence

from ..allocation.bids import (
    BidSelectionPolicy,
    EarliestStartPolicy,
    LeastTravelPolicy,
    RandomPolicy,
    SpecializationPolicy,
)
from ..analysis.reporting import FigureResult
from ..analysis.stats import SampleSummary, summarise
from ..mobility.geometry import Point, square_site
from ..mobility.models import MobilityModel, RandomWaypointMobility
from ..sim.randomness import DEFAULT_SEED, derive_rng, derive_seed
from ..workloads.supergraph_gen import GeneratedWorkload, RandomSupergraphWorkload
from .shared_inputs import (
    SharedWorkloadSegment,
    attach_workloads,
    encode_workloads,
    framed_lengths,
    publish_workloads,
)
from .trials import (
    TrialResult,
    adhoc_network_factory,
    build_trial_community,
    simulated_network_factory,
    trial_result_from_workspace,
)

NETWORK_KINDS = ("simulated", "adhoc", "adhoc-multihop")
MOBILITY_KINDS = ("line", "scatter", "waypoint")


@dataclass(frozen=True)
class TrialTask:
    """One trial, described by plain data (safe to pickle to a worker).

    ``series``/``x`` are aggregation coordinates (figure series label and
    x-axis value); the remaining fields parameterise the trial itself.
    """

    series: str
    x: int
    num_tasks: int
    num_hosts: int
    path_length: int
    repetition: int = 0
    seed: int = DEFAULT_SEED
    workload_seed: int | None = None
    network: str = "simulated"
    mobility: str = "line"
    solver: str | None = None
    policy: str = ""
    initiator_index: int = 0
    batch_auctions: bool = True
    """Auction protocol for every host of the trial: batched (one combined
    message per participant, the default) or the original per-task exchange.
    Both produce the same allocation; only message counts differ."""
    batch_execution: bool = True
    """Execution protocol for every host of the trial: batched label
    delivery and per-burst progress reports (the default) or the original
    per-label / per-task messaging.  Both produce the same commitment
    outcomes; only message counts differ."""
    fault_injection: bool = False
    """When true every host of the trial speaks the fault-hardened
    protocols (award acks, retry/backoff, liveness watchdogs) and has
    recovery enabled.  No fault plane is installed by the sweep runner —
    this flag alone changes behaviour only under faults; churn scenarios
    install a plane via :func:`~repro.experiments.trials.run_churn_trial`."""
    cohort: str = ""
    """Seed-derivation label; defaults to ``series``.  Tasks that share a
    cohort draw the same specifications and community deals even when their
    series differ — ablations use this to hold everything except the
    variable under test fixed across series."""

    @property
    def seed_label(self) -> str:
        return self.cohort or self.series

    def __post_init__(self) -> None:
        if self.network not in NETWORK_KINDS:
            raise ValueError(f"unknown network kind {self.network!r}")
        if self.mobility not in MOBILITY_KINDS:
            raise ValueError(f"unknown mobility kind {self.mobility!r}")


@dataclass(frozen=True)
class TrialOutcome:
    """A task paired with its result (``None`` when no spec could be drawn)."""

    task: TrialTask
    result: TrialResult | None

    @property
    def succeeded(self) -> bool:
        return self.result is not None and self.result.succeeded


# Workload generation is deterministic in (seed, num_tasks), so each worker
# process regenerates and caches its own copies instead of shipping the
# (large) supergraph over the pipe.
_WORKLOADS: dict[tuple[int, int], GeneratedWorkload] = {}


def workload_for(seed: int, num_tasks: int) -> GeneratedWorkload:
    key = (seed, num_tasks)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = RandomSupergraphWorkload(seed=seed).generate(num_tasks)
    return _WORKLOADS[key]


# Shared-memory segments this process has already attached (successfully or
# not): each worker reads a published segment at most once.
_ATTACHED_SEGMENTS: set[str] = set()


def _execute_trial_attached(
    task: TrialTask, timing: str = "wall", segment: str = ""
) -> tuple[TrialOutcome, bool]:
    """Worker entry point for shared-input runs.

    Warms the per-process workload cache from the published segment (once
    per worker per segment), then runs the task exactly as
    :func:`execute_trial` would.  Returns ``(outcome, attached)``: the flag
    feeds the parent's ``workers_attached`` counter and never touches the
    outcome, so shared and unshared runs stay byte-identical.
    """

    attached = False
    if segment and segment not in _ATTACHED_SEGMENTS:
        _ATTACHED_SEGMENTS.add(segment)  # never retry, even after a failure
        attached = attach_workloads(segment, _WORKLOADS)
    return execute_trial(task, timing=timing), attached


def _policy_for(name: str, seed: int) -> BidSelectionPolicy:
    if name == "specialization":
        return SpecializationPolicy()
    if name == "earliest-start":
        return EarliestStartPolicy()
    if name == "least-travel":
        return LeastTravelPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    raise ValueError(f"unknown auction policy {name!r}")


def _network_factory_for(task: TrialTask):
    if task.network == "simulated":
        return simulated_network_factory(task.seed)
    if task.network == "adhoc":
        return adhoc_network_factory(task.seed)
    return adhoc_network_factory(task.seed, multi_hop=True)


def _mobility_factory_for(
    task: TrialTask, trial_seed: int
) -> Callable[[int], "MobilityModel | Point"] | None:
    if task.mobility == "line":
        return None  # build_trial_community's default: hosts 20 m apart
    # Scale the site with the population so the mean radio degree stays
    # roughly constant (~20 neighbours at the default 150 m range).
    site = square_site(60.0 * math.sqrt(task.num_hosts))
    if task.mobility == "scatter":

        def scatter(index: int) -> Point:
            rng = derive_rng(trial_seed, "scatter", index)
            return site.random_point(rng)

        return scatter

    def waypoint(index: int) -> MobilityModel:
        return RandomWaypointMobility(
            site, seed=derive_seed(trial_seed, "waypoint", index)
        )

    return waypoint


def execute_trial(task: TrialTask, timing: str = "wall") -> TrialOutcome:
    """Run one task to completion (the worker entry point).

    Every random stream — specification draw, fragment/service partition,
    mobility, network jitter — is derived from the task's own fields, so
    the outcome does not depend on which process runs the task or what ran
    before it.
    """

    workload_seed = task.seed if task.workload_seed is None else task.workload_seed
    workload = workload_for(workload_seed, task.num_tasks)
    spec_rng = derive_rng(
        task.seed,
        "runner-spec",
        task.seed_label,
        task.num_tasks,
        task.num_hosts,
        task.path_length,
        task.repetition,
    )
    specification = workload.path_specification(task.path_length, spec_rng)
    if specification is None:
        return TrialOutcome(task=task, result=None)
    trial_seed = derive_seed(
        task.seed, "runner-trial", task.seed_label, task.path_length, task.repetition
    )
    community = build_trial_community(
        workload,
        task.num_hosts,
        seed=trial_seed,
        network_factory=_network_factory_for(task),
        solver=task.solver,
        mobility_factory=_mobility_factory_for(task, trial_seed),
        batch_auctions=task.batch_auctions,
        batch_execution=task.batch_execution,
        fault_injection=task.fault_injection,
        enable_recovery=task.fault_injection,
    )
    if task.policy:
        policy = _policy_for(task.policy, trial_seed)
        for host in community:
            host.auction_manager.policy = policy
    initiator = f"host-{task.initiator_index % task.num_hosts}"
    workspace = community.submit_specification(initiator, specification)
    community.run_until_allocated(workspace, max_sim_seconds=3_600.0)
    result = trial_result_from_workspace(community, workspace)
    if timing == "sim":
        result = result.deterministic_copy()
    return TrialOutcome(task=task, result=result)


class TrialRunner:
    """Run independent trials, optionally fanned across worker processes.

    Parameters
    ----------
    max_workers:
        Process count for the pool; defaults to ``os.cpu_count()``.
    parallel:
        ``None`` (default) auto-selects: parallel when more than one worker
        is available.  ``False`` forces in-process sequential execution —
        the same code path, so results match the parallel run exactly (see
        the module's determinism contract).
    timing:
        ``"wall"`` keeps the paper's measurement (wall clock + simulated
        latency); ``"sim"`` zeroes the wall component so outcomes are
        byte-identical across runs.
    chunksize:
        Tasks handed to a worker per dispatch; raise it for very large
        sweeps of very short trials.
    shared_inputs:
        When true (the default), each parallel run publishes the sweep's
        distinct generated workloads into one shared-memory segment that
        workers attach instead of regenerating per process.  Purely a
        cache warm-up — outcomes are byte-identical with the flag off or
        on platforms without shared memory, where it degrades silently.
    compress_shared:
        zlib-compress (level 1) the shared workload payload — both the
        local shared-memory segment and the dispatch plane's per-worker
        ``WorkloadSegment`` transfer.  ``bytes_shared_raw`` vs
        ``bytes_shared_wire`` expose the saving.
    dispatch:
        ``"tcp://host:port"`` switches :meth:`run` to the distributed
        dispatch plane: the runner serves the sweep to every connected
        ``repro-trial-worker`` instead of its own process pool (which
        remains the fallback for trials no worker could finish).  Port 0
        binds an ephemeral port; read :attr:`dispatch_address` (or call
        :meth:`start_dispatch`) for the actual one.
    dispatch_fallback:
        When every dispatch worker has died, finish the remaining trials
        on the local pool (the default) instead of raising
        :class:`~repro.experiments.dispatch.DispatchError`.
    dispatch_start_timeout / dispatch_heartbeat_timeout:
        Seconds to wait for the first worker before failing a dispatched
        sweep, and of heartbeat silence before a worker is declared dead.

    One runner owns (at most) **one** process pool, created lazily on the
    first parallel :meth:`run` and reused by every later call — running all
    figures through a single runner forks the workers once instead of once
    per figure, and the workers' per-process workload caches stay warm
    across figures that share a workload.  A dispatched runner likewise
    owns one coordinator, bound lazily and reused across sweeps (workers
    stay connected between figures).  Call :meth:`shutdown` (or use the
    runner as a context manager) to release the workers; a runner whose
    pool broke discards it and falls back to sequential execution.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        parallel: bool | None = None,
        timing: str = "wall",
        chunksize: int = 1,
        shared_inputs: bool = True,
        compress_shared: bool = True,
        dispatch: str | None = None,
        dispatch_fallback: bool = True,
        dispatch_start_timeout: float = 30.0,
        dispatch_heartbeat_timeout: float = 10.0,
    ) -> None:
        if timing not in ("wall", "sim"):
            raise ValueError("timing must be 'wall' or 'sim'")
        if chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        if self.max_workers < 1:
            raise ValueError("need at least one worker")
        self.parallel = self.max_workers > 1 if parallel is None else parallel
        self.timing = timing
        self.chunksize = chunksize
        self.shared_inputs = shared_inputs
        self.compress_shared = compress_shared
        if dispatch is not None:
            from .dispatch import parse_dispatch_address

            parse_dispatch_address(dispatch)  # fail fast on a bad address
        self.dispatch = dispatch
        self.dispatch_fallback = dispatch_fallback
        self.dispatch_start_timeout = dispatch_start_timeout
        self.dispatch_heartbeat_timeout = dispatch_heartbeat_timeout
        self.trials_run = 0
        self.parallel_batches = 0
        self.sequential_fallbacks = 0
        self.pools_created = 0
        self.workers_attached = 0  # shared-segment attachments by workers
        self.bytes_shared = 0  # wire bytes published into shared memory
        self.bytes_shared_raw = 0  # pickled payload bytes before compression
        self.bytes_shared_wire = 0  # framed bytes after compression
        self.dispatch_batches = 0  # sweeps served over the socket plane
        self.workers_lost = 0  # dispatch workers declared dead mid-sweep
        self.trials_reassigned = 0  # in-flight trials rerun elsewhere
        self.segments_dispatched = 0  # WorkloadSegment frames sent (1/worker/sweep)
        self.bytes_wire_sent = 0  # dispatch bytes coordinator -> workers
        self.bytes_wire_received = 0  # dispatch bytes workers -> coordinator
        self._closed = False
        self._pool: ProcessPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._coordinator = None  # DispatchCoordinator, bound lazily

    # -- pool lifecycle -----------------------------------------------------
    def _shared_pool(self) -> ProcessPoolExecutor:
        """The runner's process pool, created on first use and then reused.

        A finalizer ties the pool's lifetime to the runner's: callers that
        treat runners as throwaways (``run_figure4(runner=TrialRunner())``)
        get their workers reclaimed when the runner is collected, matching
        the old pool-per-run behaviour; long-lived runners should still
        call :meth:`shutdown` (or use ``with``) for prompt release.
        """

        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pool = pool
            # run() is synchronous, so the pool is idle whenever the runner
            # becomes unreachable; shutdown(wait=True) returns immediately.
            self._pool_finalizer = weakref.finalize(self, pool.shutdown)
            self.pools_created += 1
        return self._pool

    def _detach_pool(self) -> ProcessPoolExecutor | None:
        pool = self._pool
        self._pool = None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        return pool

    def _discard_pool(self) -> None:
        pool = self._detach_pool()
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def shutdown(self) -> None:
        """Release the shared worker pool and retire the runner.

        Idempotent: repeated calls (including the context manager's exit
        after an explicit call) are no-ops.  A retired runner refuses
        further :meth:`run` calls with a clear :class:`RuntimeError` — the
        alternative is a cryptic ``BrokenProcessPool`` from a torn-down
        executor, long after the actual mistake.
        """

        self._closed = True
        pool = self._detach_pool()
        if pool is not None:
            pool.shutdown()
        coordinator, self._coordinator = self._coordinator, None
        if coordinator is not None:
            coordinator.close()

    def __enter__(self) -> "TrialRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- shared inputs -------------------------------------------------------
    def _publish_shared_inputs(
        self, task_list: list[TrialTask]
    ) -> SharedWorkloadSegment | None:
        """Publish the sweep's distinct workloads into one shared segment.

        ``None`` means no sharing this run — disabled, or the platform has
        no usable shared memory — and workers regenerate from seeds (same
        objects, same outcomes).
        """

        if not self.shared_inputs:
            return None
        try:
            segment = publish_workloads(
                self._sweep_workloads(task_list), compress=self.compress_shared
            )
        except (OSError, ValueError, pickle.PicklingError):
            return None
        self.bytes_shared += segment.wire_bytes
        self.bytes_shared_raw += segment.raw_bytes
        self.bytes_shared_wire += segment.wire_bytes
        return segment

    @staticmethod
    def _sweep_workloads(task_list: list[TrialTask]) -> dict:
        """The sweep's distinct workloads, keyed by ``(seed, num_tasks)``."""

        keys = sorted(
            {
                (
                    task.seed if task.workload_seed is None else task.workload_seed,
                    task.num_tasks,
                )
                for task in task_list
            }
        )
        return {key: workload_for(*key) for key in keys}

    # -- distributed dispatch ------------------------------------------------
    def start_dispatch(self) -> str:
        """Bind the dispatch coordinator now and return its address.

        Normally the coordinator binds lazily on the first dispatched
        :meth:`run`; demos that must know the (possibly ephemeral) port
        before starting workers call this first.
        """

        if self.dispatch is None:
            raise ValueError("this runner has no dispatch= address")
        if self._coordinator is None:
            from .dispatch import DispatchCoordinator, parse_dispatch_address

            host, port = parse_dispatch_address(self.dispatch)
            self._coordinator = DispatchCoordinator(
                host,
                port,
                heartbeat_timeout=self.dispatch_heartbeat_timeout,
                start_timeout=self.dispatch_start_timeout,
            ).start()
        return self._coordinator.address

    @property
    def dispatch_address(self) -> str | None:
        """The coordinator's bound ``tcp://host:port`` (binding if needed)."""

        return None if self.dispatch is None else self.start_dispatch()

    def _run_dispatched(self, task_list: list[TrialTask]) -> list[TrialOutcome]:
        """Serve the sweep over the socket plane (see the module docstring).

        Any trial left unfinished — every worker died — is rerun on the
        local path, so the returned list is always complete; with
        ``dispatch_fallback=False`` that situation raises instead.
        """

        from .dispatch import DispatchError

        self.start_dispatch()
        assert self._coordinator is not None
        payload = encode_workloads(
            self._sweep_workloads(task_list), compress=self.compress_shared
        )
        wire_bytes, raw_bytes = framed_lengths(payload)
        self.bytes_shared_raw += raw_bytes
        self.bytes_shared_wire += wire_bytes
        report = self._coordinator.run_sweep(
            task_list, timing=self.timing, payload=payload, raw_bytes=raw_bytes
        )
        self.dispatch_batches += 1
        self.workers_lost += report.workers_lost
        self.trials_reassigned += report.trials_reassigned
        self.segments_dispatched += report.segments_sent
        self.bytes_wire_sent += report.bytes_sent
        self.bytes_wire_received += report.bytes_received
        missing = [
            index for index, outcome in enumerate(report.outcomes) if outcome is None
        ]
        if missing:
            if not self.dispatch_fallback:
                raise DispatchError(
                    f"{len(missing)} of {len(task_list)} trials unfinished: "
                    "every dispatch worker died and dispatch_fallback is off"
                )
            self.trials_reassigned += len(missing)
            rescued = self._run_local([task_list[index] for index in missing])
            for index, outcome in zip(missing, rescued):
                report.outcomes[index] = outcome
        return report.outcomes

    # -- execution ----------------------------------------------------------
    def run(self, tasks: Iterable[TrialTask]) -> list[TrialOutcome]:
        """Execute every task and return outcomes in task order."""

        if self._closed:
            raise RuntimeError(
                "this TrialRunner has been shut down; create a new runner "
                "to submit more trials"
            )
        task_list = list(tasks)
        if not task_list:
            return []
        if self.dispatch is not None:
            outcomes = self._run_dispatched(task_list)
        else:
            outcomes = self._run_local(task_list)
        self.trials_run += len(outcomes)
        return outcomes

    def _run_local(self, task_list: list[TrialTask]) -> list[TrialOutcome]:
        """The inline / process-pool execution path (and dispatch fallback)."""

        worker = partial(execute_trial, timing=self.timing)
        outcomes: list[TrialOutcome] | None = None
        if self.parallel and self.max_workers > 1 and len(task_list) > 1:
            segment = self._publish_shared_inputs(task_list)
            try:
                pool = self._shared_pool()
                if segment is not None:
                    attached_worker = partial(
                        _execute_trial_attached,
                        timing=self.timing,
                        segment=segment.name,
                    )
                    pairs = list(
                        pool.map(attached_worker, task_list, chunksize=self.chunksize)
                    )
                    self.workers_attached += sum(
                        1 for _, attached in pairs if attached
                    )
                    outcomes = [outcome for outcome, _ in pairs]
                else:
                    outcomes = list(
                        pool.map(worker, task_list, chunksize=self.chunksize)
                    )
                self.parallel_batches += 1
            except (OSError, ImportError, BrokenExecutor):
                # Pool-infrastructure failure (restricted sandbox, missing
                # semaphores, killed worker): degrade gracefully.  Errors
                # raised *by a trial* propagate unchanged.
                self.sequential_fallbacks += 1
                self._discard_pool()
                outcomes = None
            finally:
                if segment is not None:
                    segment.unlink()
        if outcomes is None:
            outcomes = [worker(task) for task in task_list]
        return outcomes

    def run_figure(
        self, tasks: Iterable[TrialTask], figure: FigureResult
    ) -> FigureResult:
        """Execute the tasks and aggregate successful samples into ``figure``."""

        return aggregate_into_figure(self.run(tasks), figure)


def aggregate_into_figure(
    outcomes: Sequence[TrialOutcome], figure: FigureResult
) -> FigureResult:
    """Fold outcomes into a figure, in task order (so repeated aggregation of
    the same outcomes — sequential or parallel — builds identical figures)."""

    samples: dict[tuple[str, int], list[float]] = {}
    for outcome in outcomes:
        if outcome.succeeded:
            assert outcome.result is not None
            key = (outcome.task.series, outcome.task.x)
            samples.setdefault(key, []).append(outcome.result.allocation_seconds)
    for (series, x), values in samples.items():
        figure.add_samples(series, x, values)
    return figure


def summarise_by_point(
    outcomes: Sequence[TrialOutcome],
) -> dict[tuple[str, int], SampleSummary]:
    """Per-(series, x) summary statistics of the successful trials."""

    samples: dict[tuple[str, int], list[float]] = {}
    for outcome in outcomes:
        if outcome.succeeded:
            assert outcome.result is not None
            key = (outcome.task.series, outcome.task.x)
            samples.setdefault(key, []).append(outcome.result.allocation_seconds)
    return {key: summarise(values) for key, values in samples.items()}


def sweep_tasks(
    series: str,
    num_tasks: int,
    num_hosts: int,
    path_lengths: Sequence[int],
    runs: int,
    seed: int = DEFAULT_SEED,
    max_path_length: int | None = None,
    network: str = "simulated",
    mobility: str = "line",
    solver: str | None = None,
    policy: str = "",
    workload_seed: int | None = None,
    x_values: Sequence[int] | None = None,
    batch_auctions: bool = True,
    batch_execution: bool = True,
) -> list[TrialTask]:
    """Build the task list for one figure series (``runs`` trials per point).

    ``x_values`` overrides the aggregation x coordinate per path length
    (defaults to the path length itself).
    """

    tasks: list[TrialTask] = []
    for position, path_length in enumerate(path_lengths):
        if max_path_length is not None and path_length > max_path_length:
            continue
        x = path_length if x_values is None else x_values[position]
        for repetition in range(runs):
            tasks.append(
                TrialTask(
                    series=series,
                    x=x,
                    num_tasks=num_tasks,
                    num_hosts=num_hosts,
                    path_length=path_length,
                    repetition=repetition,
                    seed=seed,
                    workload_seed=workload_seed,
                    network=network,
                    mobility=mobility,
                    solver=solver,
                    policy=policy,
                    initiator_index=repetition,
                    batch_auctions=batch_auctions,
                    batch_execution=batch_execution,
                )
            )
    return tasks
