"""Ablation experiments beyond the paper's figures.

The paper's evaluation measures the end-to-end latency of the batch
construction strategy with the specialization-first auction policy.  Two
design choices called out in the text deserve their own measurements:

* **Incremental vs. batch discovery** (Section 3.1's extension): the
  incremental variant transfers only the fragments needed to extend the
  coloured frontier, at the price of extra query rounds.  The ablation
  reports the number of fragments transferred, messages exchanged, and the
  end-to-end latency for both strategies on the same workload.
* **Auction selection policies** (Section 3.2): the specialization-first
  rule keeps versatile participants free.  The ablation compares it against
  earliest-start and random selection by measuring how many *distinct*
  service types remain unscheduled in the community after allocating a
  batch of workflows (a proxy for the resource-pool preservation argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.incremental import LocalFragmentSource, IncrementalConstructor
from ..core.construction import construct_workflow
from ..core.fragments import KnowledgeSet
from ..sim.randomness import DEFAULT_SEED, derive_rng
from ..workloads.supergraph_gen import RandomSupergraphWorkload
from .runner import TrialRunner, TrialTask


@dataclass(frozen=True)
class DiscoveryAblationPoint:
    """Batch vs. incremental discovery on one (task count, path length) point."""

    num_tasks: int
    path_length: int
    batch_fragments: int
    incremental_fragments: int
    incremental_queries: int
    incremental_rounds: int
    both_succeeded: bool

    @property
    def transfer_savings(self) -> float:
        """Fraction of fragment transfers avoided by the incremental strategy."""

        if self.batch_fragments == 0:
            return 0.0
        saved = self.batch_fragments - self.incremental_fragments
        return saved / self.batch_fragments


def run_discovery_ablation(
    task_counts: Sequence[int] = (50, 100, 250),
    path_lengths: Sequence[int] = (2, 4, 8),
    seed: int = DEFAULT_SEED,
) -> list[DiscoveryAblationPoint]:
    """Compare fragment-transfer volumes of batch vs. incremental construction."""

    points: list[DiscoveryAblationPoint] = []
    generator = RandomSupergraphWorkload(seed=seed)
    for num_tasks in task_counts:
        workload = generator.generate(num_tasks)
        knowledge = workload.knowledge
        rng = derive_rng(seed, "ablation-discovery", num_tasks)
        for path_length in path_lengths:
            if path_length > workload.max_path_length():
                continue
            specification = workload.path_specification(path_length, rng)
            if specification is None:
                continue
            batch = construct_workflow(knowledge, specification)
            source = LocalFragmentSource(knowledge)
            incremental = IncrementalConstructor(source).construct(specification)
            points.append(
                DiscoveryAblationPoint(
                    num_tasks=num_tasks,
                    path_length=path_length,
                    batch_fragments=len(knowledge),
                    incremental_fragments=incremental.incremental.fragments_transferred,
                    incremental_queries=incremental.incremental.queries_issued,
                    incremental_rounds=incremental.incremental.rounds,
                    both_succeeded=batch.succeeded and incremental.succeeded,
                )
            )
    return points


@dataclass(frozen=True)
class PolicyAblationPoint:
    """End-to-end latency and allocation spread under one auction policy."""

    policy: str
    num_tasks: int
    num_hosts: int
    path_length: int
    allocation_seconds: float
    distinct_winners: int
    succeeded: bool


def run_policy_ablation(
    num_tasks: int = 100,
    num_hosts: int = 5,
    path_lengths: Sequence[int] = (4, 8, 12),
    seed: int = DEFAULT_SEED,
    runner: TrialRunner | None = None,
) -> list[PolicyAblationPoint]:
    """Compare auction selection policies on the same random workloads.

    Re-ranking the winning bids offline would be misleading, so each point
    rebuilds the community with the policy under test wired into every
    host's auction manager.  The sweep is expressed as
    :class:`~repro.experiments.runner.TrialTask` descriptions (the policy
    travels by name) and fans out through the shared
    :class:`~repro.experiments.runner.TrialRunner`.
    """

    policy_names = ("specialization", "earliest-start", "random")
    workload = RandomSupergraphWorkload(seed=seed).generate(num_tasks)
    max_length = workload.max_path_length()
    # A shared cohort holds the specification and the fragment/service deal
    # fixed across policies, so each point varies only the policy under test.
    tasks = [
        TrialTask(
            series=policy,
            x=path_length,
            num_tasks=num_tasks,
            num_hosts=num_hosts,
            path_length=path_length,
            seed=seed,
            policy=policy,
            cohort="policy-ablation",
        )
        for policy in policy_names
        for path_length in path_lengths
        if path_length <= max_length
    ]
    runner = runner if runner is not None else TrialRunner(parallel=False)
    results: list[PolicyAblationPoint] = []
    for outcome in runner.run(tasks):
        result = outcome.result
        if result is None:
            continue
        results.append(
            PolicyAblationPoint(
                policy=outcome.task.policy,
                num_tasks=num_tasks,
                num_hosts=num_hosts,
                path_length=outcome.task.path_length,
                allocation_seconds=result.allocation_seconds,
                distinct_winners=result.distinct_winners,
                succeeded=result.succeeded,
            )
        )
    return results


@dataclass(frozen=True)
class BaselineComparisonPoint:
    """Open workflow vs. the static-workflow baseline under participant absence."""

    scenario: str
    open_workflow_succeeded: bool
    static_workflow_succeeded: bool
    open_workflow_tasks: int


def run_baseline_comparison(seed: int = DEFAULT_SEED) -> list[BaselineComparisonPoint]:
    """Contrast open construction with a statically pre-built workflow.

    The static baseline (see :mod:`repro.baselines.static_engine`) fixes the
    workflow graph up front; when the participant that provides one of its
    tasks is absent, execution cannot proceed.  The open workflow engine
    re-constructs from whatever know-how is present and routes around the
    absence whenever an alternative exists — the catering scenarios of the
    paper's Section 2.1.
    """

    from ..baselines.static_engine import StaticWorkflowEngine
    from ..workloads import catering

    points: list[BaselineComparisonPoint] = []
    scenarios = {
        "all-present": catering.ALL_ROLES,
        "chef-absent": tuple(
            role for role in catering.ALL_ROLES if role.name != "master-chef"
        ),
        "wait-staff-absent": tuple(
            role for role in catering.ALL_ROLES if role.name != "wait-staff"
        ),
    }
    # The static baseline is the workflow an expert would have designed when
    # everyone was present: omelet breakfast plus table-service lunch.
    static_tasks = [
        catering.SET_OUT_INGREDIENTS,
        catering.COOK_OMELETS,
        catering.PREPARE_SOUP_AND_SALAD,
        catering.SERVE_TABLES,
    ]
    specification = catering.breakfast_and_lunch_specification()
    for name, roles in scenarios.items():
        knowledge = KnowledgeSet(
            fragment for role in roles for fragment in role.fragments
        )
        available_services: set[str] = set()
        for role in roles:
            available_services |= {s.service_type for s in role.services}
        open_result = construct_workflow(knowledge, specification)
        open_ok = open_result.succeeded and all(
            task.service_type in available_services
            for task in open_result.workflow.tasks.values()
        ) if open_result.succeeded else False
        static_engine = StaticWorkflowEngine(static_tasks)
        static_ok = static_engine.can_execute(available_services)
        points.append(
            BaselineComparisonPoint(
                scenario=name,
                open_workflow_succeeded=open_ok,
                static_workflow_succeeded=static_ok,
                open_workflow_tasks=(
                    len(open_result.workflow.task_names) if open_result.succeeded else 0
                ),
            )
        )
    return points
