"""Experiment runners that regenerate the paper's Figures 4, 5, and 6.

Every function returns a :class:`~repro.analysis.reporting.FigureResult`
with the same axes and series as the corresponding figure in the paper:

* :func:`run_figure4` — 100 task nodes partitioned across 2-15 hosts over
  the simulated network; average time to allocation vs. path length, one
  series per host count.
* :func:`run_figure5` — 2 hosts, supergraphs of 25-500 task nodes; one
  series per supergraph size.
* :func:`run_figure6` — 4 hosts over the 802.11g-like ad hoc wireless
  model, supergraphs of 25/50/100 task nodes; the maximum achievable path
  length shrinks with the graph size, reproducing the cut-offs annotated in
  the paper's figure.
* :func:`run_adhoc_scaling` — beyond the paper: fig6-style workloads over a
  *multi-hop* ad hoc network with hundreds of mobile hosts scattered over a
  site, the scenario class the spatial-indexed network substrate unlocks.

Each figure expresses its sweep as a flat list of
:class:`~repro.experiments.runner.TrialTask` descriptions and hands them to
a :class:`~repro.experiments.runner.TrialRunner`; pass
``runner=TrialRunner()`` to fan the trials across every core (results are
identical to the default sequential execution — per-trial seeding is
order-independent).

The paper averages one thousand runs per point.  That is supported (pass
``runs=1000``) but the default is intentionally small so the whole suite can
run in seconds; set the ``REPRO_RUNS`` environment variable or the ``runs``
argument for higher fidelity.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from ..analysis.reporting import FigureResult
from ..sim.randomness import DEFAULT_SEED, derive_rng
from ..workloads.supergraph_gen import GeneratedWorkload, RandomSupergraphWorkload
from .runner import TrialRunner, TrialTask, sweep_tasks
from .trials import (
    TrialResult,
    adhoc_network_factory,
    run_allocation_trial,
    simulated_network_factory,
)

DEFAULT_PATH_LENGTHS: tuple[int, ...] = tuple(range(2, 23, 2))
FIGURE4_HOST_COUNTS: tuple[int, ...] = (2, 3, 4, 5, 10, 15)
FIGURE5_TASK_COUNTS: tuple[int, ...] = (25, 50, 100, 250, 500)
FIGURE6_TASK_COUNTS: tuple[int, ...] = (25, 50, 100)
SCALING_HOST_COUNTS: tuple[int, ...] = (20, 50, 100, 200)


def default_runs(fallback: int = 3) -> int:
    """Number of repetitions per data point (override with ``REPRO_RUNS``)."""

    value = os.environ.get("REPRO_RUNS", "")
    try:
        parsed = int(value)
    except ValueError:
        return fallback
    return max(1, parsed) if value else fallback


def _generate_workloads(
    task_counts: Iterable[int], seed: int
) -> dict[int, GeneratedWorkload]:
    generator = RandomSupergraphWorkload(seed=seed)
    return {count: generator.generate(count) for count in task_counts}


def _run_tasks(
    figure: FigureResult, tasks: Sequence[TrialTask], runner: TrialRunner | None
) -> FigureResult:
    runner = runner if runner is not None else TrialRunner(parallel=False)
    return runner.run_figure(tasks, figure)


def run_figure4(
    num_tasks: int = 100,
    host_counts: Sequence[int] = FIGURE4_HOST_COUNTS,
    path_lengths: Sequence[int] = DEFAULT_PATH_LENGTHS,
    runs: int | None = None,
    seed: int = DEFAULT_SEED,
    runner: TrialRunner | None = None,
    batch_execution: bool = True,
) -> FigureResult:
    """Figure 4: 100 task nodes partitioned across different numbers of hosts."""

    runs = default_runs() if runs is None else runs
    figure = FigureResult(
        title="Figure 4 — simulation of 100 task nodes across varying host counts",
        metadata={"task_nodes": num_tasks, "runs_per_point": runs, "network": "simulated"},
    )
    workload = RandomSupergraphWorkload(seed=seed).generate(num_tasks)
    tasks: list[TrialTask] = []
    for num_hosts in host_counts:
        tasks.extend(
            sweep_tasks(
                series=f"{num_hosts} host",
                num_tasks=num_tasks,
                num_hosts=num_hosts,
                path_lengths=path_lengths,
                runs=runs,
                seed=seed,
                max_path_length=workload.max_path_length(),
                network="simulated",
                batch_execution=batch_execution,
            )
        )
    return _run_tasks(figure, tasks, runner)


def run_figure5(
    num_hosts: int = 2,
    task_counts: Sequence[int] = FIGURE5_TASK_COUNTS,
    path_lengths: Sequence[int] = tuple(range(2, 15, 2)),
    runs: int | None = None,
    seed: int = DEFAULT_SEED,
    runner: TrialRunner | None = None,
    batch_execution: bool = True,
) -> FigureResult:
    """Figure 5: different numbers of task nodes partitioned across 2 hosts."""

    runs = default_runs() if runs is None else runs
    figure = FigureResult(
        title="Figure 5 — simulation of varying supergraph sizes across 2 hosts",
        metadata={"hosts": num_hosts, "runs_per_point": runs, "network": "simulated"},
    )
    workloads = _generate_workloads(task_counts, seed)
    tasks: list[TrialTask] = []
    for task_count in task_counts:
        tasks.extend(
            sweep_tasks(
                series=f"{task_count} task",
                num_tasks=task_count,
                num_hosts=num_hosts,
                path_lengths=path_lengths,
                runs=runs,
                seed=seed,
                max_path_length=workloads[task_count].max_path_length(),
                network="simulated",
                batch_execution=batch_execution,
            )
        )
    return _run_tasks(figure, tasks, runner)


def run_figure6(
    num_hosts: int = 4,
    task_counts: Sequence[int] = FIGURE6_TASK_COUNTS,
    path_lengths: Sequence[int] = tuple(range(2, 21, 2)),
    runs: int | None = None,
    seed: int = DEFAULT_SEED,
    runner: TrialRunner | None = None,
    batch_execution: bool = True,
) -> FigureResult:
    """Figure 6: ad hoc 802.11g wireless "empirical" runs with 4 hosts.

    The real testbed is replaced by the
    :class:`~repro.net.adhoc.AdHocWirelessNetwork` latency model; the
    reported time is wall-clock processing plus the simulated radio latency,
    so the series sit above their Figure 4/5 counterparts just as the
    paper's empirical numbers sit above the pure-simulation ones.
    """

    runs = default_runs() if runs is None else runs
    figure = FigureResult(
        title="Figure 6 — ad hoc 802.11g wireless, 4 hosts, varying supergraph sizes",
        metadata={"hosts": num_hosts, "runs_per_point": runs, "network": "802.11g model"},
    )
    workloads = _generate_workloads(task_counts, seed)
    tasks: list[TrialTask] = []
    for task_count in task_counts:
        tasks.extend(
            sweep_tasks(
                series=f"{task_count} task",
                num_tasks=task_count,
                num_hosts=num_hosts,
                path_lengths=path_lengths,
                runs=runs,
                seed=seed,
                max_path_length=workloads[task_count].max_path_length(),
                network="adhoc",
                batch_execution=batch_execution,
            )
        )
    figure.metadata["max_path_length"] = {
        f"{count} task": workloads[count].max_path_length() for count in task_counts
    }
    return _run_tasks(figure, tasks, runner)


def run_adhoc_scaling(
    num_tasks: int = 50,
    host_counts: Sequence[int] = SCALING_HOST_COUNTS,
    path_length: int = 4,
    runs: int | None = None,
    seed: int = DEFAULT_SEED,
    mobility: str = "waypoint",
    runner: TrialRunner | None = None,
    batch_execution: bool = True,
) -> FigureResult:
    """Fig6-style workloads scaled to hundreds of mobile multi-hop hosts.

    Hosts are scattered (``mobility="scatter"``) or wander as random
    waypoints (``"waypoint"``, the default) over a site whose area grows
    with the population, so messages must be relayed over AODV routes and
    the route table churns as hosts move.  The x axis is the host count.
    """

    runs = default_runs() if runs is None else runs
    figure = FigureResult(
        title=(
            f"Ad hoc scaling — {num_tasks} task nodes, multi-hop 802.11g, "
            f"{mobility} mobility"
        ),
        x_label="Hosts",
        metadata={
            "task_nodes": num_tasks,
            "runs_per_point": runs,
            "network": "802.11g multi-hop",
            "path_length": path_length,
            "mobility": mobility,
        },
    )
    workload = RandomSupergraphWorkload(seed=seed).generate(num_tasks)
    tasks: list[TrialTask] = []
    for num_hosts in host_counts:
        tasks.extend(
            sweep_tasks(
                series=f"path {path_length}",
                num_tasks=num_tasks,
                num_hosts=num_hosts,
                path_lengths=(path_length,),
                runs=runs,
                seed=seed,
                max_path_length=workload.max_path_length(),
                network="adhoc-multihop",
                mobility=mobility,
                x_values=(num_hosts,),
                batch_execution=batch_execution,
            )
        )
    return _run_tasks(figure, tasks, runner)


def run_single_point(
    num_tasks: int,
    num_hosts: int,
    path_length: int,
    seed: int = DEFAULT_SEED,
    adhoc: bool = False,
) -> TrialResult | None:
    """Run one trial of one configuration (used by quick checks and tests)."""

    workload = RandomSupergraphWorkload(seed=seed).generate(num_tasks)
    rng = derive_rng(seed, "single", num_tasks, num_hosts, path_length)
    specification = workload.path_specification(path_length, rng)
    if specification is None:
        return None
    factory = adhoc_network_factory(seed) if adhoc else simulated_network_factory(seed)
    return run_allocation_trial(
        workload, num_hosts, specification, seed=seed, network_factory=factory
    )
