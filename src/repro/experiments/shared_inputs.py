"""Shared-memory publication of read-mostly trial inputs.

A sweep's tasks are tiny declarative records, but the workload behind them
— the generated supergraph with its fragment partitioning inputs — is the
one genuinely *shared, read-mostly* input of every trial: deterministic in
``(workload_seed, num_tasks)`` and identical for every task that names the
same pair.  Without sharing, every worker process regenerates each
distinct workload from its seed on first use (see
:data:`repro.experiments.runner._WORKLOADS`): deterministic, but the
generation cost is paid once per worker per workload, and it grows with
the workload size.

This module publishes the pickled workloads of a sweep into **one**
:mod:`multiprocessing.shared_memory` segment before the fan-out; workers
attach, deserialize straight out of the shared buffer into their
per-process cache, and detach — one generation in the parent instead of
one per worker, and the bytes cross no pipe.  Attachment is a pure cache
warm-up: a worker that misses the segment (or a run with
``shared_inputs=False``) regenerates from seeds and produces *the same
workload objects*, so trial outcomes are byte-identical either way under
``timing="sim"`` — the shared/pickled equivalence test pins exactly that.

Lifecycle: the parent unlinks the segment as soon as the fan-out
completes, so nothing outlives the run even on a crash-free path.  Pool
workers inherit the parent's resource tracker, so their read-only
attachments add no cleanup obligations of their own — the parent's unlink
retires the name exactly once.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import Mapping

from ..workloads.supergraph_gen import GeneratedWorkload

WorkloadKey = tuple[int, int]  # (workload_seed, num_tasks)


class SharedWorkloadSegment:
    """One published shared-memory segment holding a sweep's workloads.

    Create with :func:`publish_workloads`; pass :attr:`name` to the
    workers; call :meth:`unlink` (idempotent) once the fan-out is done.
    ``payload_bytes`` is the pickled size — the bytes every worker would
    otherwise have regenerated or received down a pipe.
    """

    def __init__(self, payload: bytes) -> None:
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(len(payload), 1)
        )
        self._segment.buf[: len(payload)] = payload
        self.name = self._segment.name
        self.payload_bytes = len(payload)

    def unlink(self) -> None:
        """Release and destroy the segment (idempotent, best-effort)."""

        segment = self._segment
        if segment is None:
            return
        self._segment = None
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone: nothing to free
            pass


def publish_workloads(
    workloads: Mapping[WorkloadKey, GeneratedWorkload],
) -> SharedWorkloadSegment:
    """Pickle the keyed workloads into a fresh shared-memory segment.

    Raises whatever the platform raises when shared memory is unavailable
    (``OSError`` on a locked-down ``/dev/shm``); callers fall back to
    per-worker regeneration.
    """

    payload = pickle.dumps(dict(workloads), protocol=pickle.HIGHEST_PROTOCOL)
    return SharedWorkloadSegment(payload)


def attach_workloads(
    name: str, cache: dict[WorkloadKey, GeneratedWorkload]
) -> bool:
    """Load a published segment into ``cache`` (worker side).

    Reads the pickled mapping straight out of the shared buffer, fills
    only the cache keys not already present (an attached workload and a
    regenerated one are interchangeable — both are pure functions of the
    key), and detaches.  Returns ``True`` on success; any failure leaves
    the cache untouched and the caller regenerating from seeds.
    """

    try:
        segment = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return False
    try:
        # Note on cleanup: pool workers inherit the parent's resource
        # tracker, so this open re-registers a name the tracker already
        # holds (a set: no-op) and the parent's unlink retires it exactly
        # once.  No per-worker unregister dance is needed — or safe.
        workloads = pickle.loads(bytes(segment.buf))
    finally:
        segment.close()
    for key, workload in workloads.items():
        cache.setdefault(key, workload)
    return True
