"""Shared publication of read-mostly trial inputs (memory segment or wire).

A sweep's tasks are tiny declarative records, but the workload behind them
— the generated supergraph with its fragment partitioning inputs — is the
one genuinely *shared, read-mostly* input of every trial: deterministic in
``(workload_seed, num_tasks)`` and identical for every task that names the
same pair.  Without sharing, every worker process regenerates each
distinct workload from its seed on first use (see
:data:`repro.experiments.runner._WORKLOADS`): deterministic, but the
generation cost is paid once per worker per workload, and it grows with
the workload size.

This module frames the pickled workloads of a sweep into **one**
self-describing segment payload (:func:`encode_workloads`: magic, version,
flags, explicit lengths, CRC — zlib level 1 inside with ``compress=True``,
the default) and publishes it either into a
:mod:`multiprocessing.shared_memory` segment before a local fan-out or —
via the dispatch plane's ``WorkloadSegment`` frame — across a TCP socket
to remote workers, which re-publish it into *their* local shared memory.
Workers attach, deserialize straight out of the shared buffer into their
per-process cache, and detach — one generation in the parent instead of
one per worker, and the bytes cross each transport exactly once per
consumer.  Attachment is a pure cache warm-up: a worker that misses the
segment (or a run with ``shared_inputs=False``) regenerates from seeds and
produces *the same workload objects*, so trial outcomes are byte-identical
either way under ``timing="sim"`` — the shared/pickled equivalence test
pins exactly that.

The explicit payload length in the frame matters for shared memory:
segments round up to a page, so the buffer carries trailing padding that a
bare ``zlib.decompress`` would trip over.  The CRC turns a torn or
clobbered segment into a clean regenerate-from-seeds fallback rather than
a corrupt workload.

Lifecycle: the parent unlinks the segment as soon as the fan-out
completes, so nothing outlives the run even on a crash-free path.  Pool
workers inherit the parent's resource tracker, so their read-only
attachments add no cleanup obligations of their own — the parent's unlink
retires the name exactly once.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from multiprocessing import shared_memory
from typing import Mapping

from ..workloads.supergraph_gen import GeneratedWorkload

WorkloadKey = tuple[int, int]  # (workload_seed, num_tasks)

SEGMENT_MAGIC = b"RWKS"
SEGMENT_VERSION = 1
_FLAG_ZLIB = 0x01
# magic, version, flags, wire length, raw (pickled) length, payload crc32
_SEGMENT_HEADER = struct.Struct(">4sBBIII")


def encode_workloads(
    workloads: Mapping[WorkloadKey, GeneratedWorkload], compress: bool = True
) -> bytes:
    """Frame the keyed workloads as one self-describing segment payload.

    ``compress=True`` (the default) runs the pickle through zlib level 1 —
    fast enough to be free next to workload generation, and the framed
    bytes are what crosses shared memory *and* the dispatch socket, so the
    saving lands on both transports.  Raises whatever pickling raises;
    callers fall back to per-worker regeneration.
    """

    raw = pickle.dumps(dict(workloads), protocol=pickle.HIGHEST_PROTOCOL)
    flags = 0
    payload = raw
    if compress:
        payload = zlib.compress(raw, level=1)
        flags |= _FLAG_ZLIB
    header = _SEGMENT_HEADER.pack(
        SEGMENT_MAGIC,
        SEGMENT_VERSION,
        flags,
        len(payload),
        len(raw),
        zlib.crc32(payload),
    )
    return header + payload


def framed_lengths(payload: bytes) -> tuple[int, int]:
    """``(wire_bytes, raw_bytes)`` of a framed segment payload (header only)."""

    if len(payload) < _SEGMENT_HEADER.size:
        raise ValueError("workload segment shorter than its header")
    _, _, _, wire_len, raw_len, _ = _SEGMENT_HEADER.unpack_from(payload)
    return wire_len, raw_len


def decode_workloads(data: bytes | memoryview) -> dict[WorkloadKey, GeneratedWorkload]:
    """Decode a framed segment payload (trailing padding tolerated).

    Raises :class:`ValueError` on bad magic, an unknown segment version, a
    truncated payload, or a CRC mismatch — attach treats any of those as
    "no segment" and regenerates from seeds.
    """

    view = memoryview(data)
    if len(view) < _SEGMENT_HEADER.size:
        raise ValueError("workload segment shorter than its header")
    magic, version, flags, wire_len, raw_len, crc = _SEGMENT_HEADER.unpack_from(view)
    if magic != SEGMENT_MAGIC:
        raise ValueError(f"bad workload segment magic {bytes(magic)!r}")
    if version != SEGMENT_VERSION:
        raise ValueError(f"unknown workload segment version {version}")
    end = _SEGMENT_HEADER.size + wire_len
    if len(view) < end:
        raise ValueError("truncated workload segment payload")
    payload = bytes(view[_SEGMENT_HEADER.size : end])
    if zlib.crc32(payload) != crc:
        raise ValueError("workload segment CRC mismatch")
    if flags & _FLAG_ZLIB:
        payload = zlib.decompress(payload)
    if len(payload) != raw_len:
        raise ValueError("workload segment raw length mismatch")
    workloads = pickle.loads(payload)
    if not isinstance(workloads, dict):
        raise ValueError("workload segment did not hold a workload mapping")
    return workloads


class SharedWorkloadSegment:
    """One published shared-memory segment holding a sweep's workloads.

    Create with :func:`publish_workloads` (or hand it an already-framed
    payload, as the dispatch worker does with the bytes it received over
    the socket); pass :attr:`name` to the workers; call :meth:`unlink`
    (idempotent) once the fan-out is done.  ``wire_bytes`` is the framed
    (possibly compressed) size actually occupying the segment,
    ``raw_bytes`` the pickled size it stands for; ``payload_bytes`` keeps
    the historical name for the wire size.
    """

    def __init__(self, payload: bytes, raw_bytes: int | None = None) -> None:
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(len(payload), 1)
        )
        self._segment.buf[: len(payload)] = payload
        self.name = self._segment.name
        self.wire_bytes = len(payload)
        self.raw_bytes = len(payload) if raw_bytes is None else raw_bytes
        self.payload_bytes = self.wire_bytes

    def unlink(self) -> None:
        """Release and destroy the segment (idempotent, best-effort)."""

        segment = self._segment
        if segment is None:
            return
        self._segment = None
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone: nothing to free
            pass


def publish_workloads(
    workloads: Mapping[WorkloadKey, GeneratedWorkload], compress: bool = True
) -> SharedWorkloadSegment:
    """Frame the keyed workloads into a fresh shared-memory segment.

    Raises whatever the platform raises when shared memory is unavailable
    (``OSError`` on a locked-down ``/dev/shm``); callers fall back to
    per-worker regeneration.
    """

    payload = encode_workloads(workloads, compress=compress)
    raw_len = _SEGMENT_HEADER.unpack_from(payload)[4]
    return SharedWorkloadSegment(payload, raw_bytes=raw_len)


def attach_workloads(
    name: str, cache: dict[WorkloadKey, GeneratedWorkload]
) -> bool:
    """Load a published segment into ``cache`` (worker side).

    Reads the framed mapping straight out of the shared buffer, fills
    only the cache keys not already present (an attached workload and a
    regenerated one are interchangeable — both are pure functions of the
    key), and detaches.  Returns ``True`` on success; any failure —
    including a corrupt or version-mismatched frame — leaves the cache
    untouched and the caller regenerating from seeds.
    """

    try:
        segment = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return False
    try:
        # Note on cleanup: pool workers inherit the parent's resource
        # tracker, so this open re-registers a name the tracker already
        # holds (a set: no-op) and the parent's unlink retires it exactly
        # once.  No per-worker unregister dance is needed — or safe.
        try:
            workloads = decode_workloads(segment.buf)
        except (ValueError, zlib.error, pickle.UnpicklingError):
            return False
    finally:
        segment.close()
    for key, workload in workloads.items():
        cache.setdefault(key, workload)
    return True
