"""Experiment harness: trial runner, figure sweeps, and ablations.

The harness is built in three layers:

1. :mod:`~repro.experiments.trials` runs a *single* construction+allocation
   trial (the paper's Section 5 procedure) and reports a
   :class:`TrialResult`.
2. :mod:`~repro.experiments.runner` fans *many* independent trials out.
   The core API:

   * ``TrialTask(series, x, num_tasks, num_hosts, path_length, ...)`` — a
     picklable description of one trial.  All of a trial's randomness is
     derived from the task's fields, never from execution order.
   * ``TrialRunner(max_workers=None, parallel=None, timing="wall")`` — runs
     a task list; ``.run(tasks)`` returns ``TrialOutcome``\\ s in task
     order, fanned across a ``ProcessPoolExecutor`` when ``parallel`` (the
     auto-default on multi-core machines) and run in-process otherwise.
     Sequential and parallel execution agree exactly; with
     ``timing="sim"`` the outcomes are byte-identical (wall-clock noise is
     zeroed at the source).  ``.run_figure(tasks, figure)`` aggregates the
     successful samples straight into a
     :class:`~repro.analysis.reporting.FigureResult`.
   * ``sweep_tasks(...)`` builds one series' task list;
     ``aggregate_into_figure`` / ``summarise_by_point`` fold outcomes into
     figures / :class:`~repro.analysis.stats.SampleSummary` maps.

3. :mod:`~repro.experiments.figures` and
   :mod:`~repro.experiments.ablations` express the paper's figures (4-6),
   the beyond-the-paper scaling sweep (:func:`run_adhoc_scaling`), and the
   ablations as task lists over that engine.  Every driver accepts
   ``runner=TrialRunner()`` to use all cores::

       from repro.experiments import TrialRunner, run_figure4
       figure = run_figure4(runs=100, runner=TrialRunner())

"""

from .dispatch import DispatchCoordinator, DispatchError, parse_dispatch_address

from .ablations import (
    BaselineComparisonPoint,
    DiscoveryAblationPoint,
    PolicyAblationPoint,
    run_baseline_comparison,
    run_discovery_ablation,
    run_policy_ablation,
)
from .figures import (
    DEFAULT_PATH_LENGTHS,
    FIGURE4_HOST_COUNTS,
    FIGURE5_TASK_COUNTS,
    FIGURE6_TASK_COUNTS,
    SCALING_HOST_COUNTS,
    default_runs,
    run_adhoc_scaling,
    run_figure4,
    run_figure5,
    run_figure6,
    run_single_point,
)
from .runner import (
    TrialOutcome,
    TrialRunner,
    TrialTask,
    aggregate_into_figure,
    execute_trial,
    summarise_by_point,
    sweep_tasks,
)
from .trials import (
    TrialResult,
    adhoc_network_factory,
    build_trial_community,
    plan_producer_crash,
    run_allocation_trial,
    simulated_network_factory,
)

def __getattr__(name: str):
    # TrialWorker is exported lazily: importing repro.experiments must not
    # pre-import the worker module, or `python -m repro.experiments.worker`
    # (the CLI) would find it in sys.modules before runpy executes it.
    if name == "TrialWorker":
        from .worker import TrialWorker

        return TrialWorker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BaselineComparisonPoint",
    "DEFAULT_PATH_LENGTHS",
    "DiscoveryAblationPoint",
    "DispatchCoordinator",
    "DispatchError",
    "TrialWorker",
    "parse_dispatch_address",
    "FIGURE4_HOST_COUNTS",
    "FIGURE5_TASK_COUNTS",
    "FIGURE6_TASK_COUNTS",
    "PolicyAblationPoint",
    "SCALING_HOST_COUNTS",
    "TrialOutcome",
    "TrialResult",
    "TrialRunner",
    "TrialTask",
    "adhoc_network_factory",
    "aggregate_into_figure",
    "build_trial_community",
    "default_runs",
    "execute_trial",
    "plan_producer_crash",
    "run_adhoc_scaling",
    "run_allocation_trial",
    "run_baseline_comparison",
    "run_discovery_ablation",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_policy_ablation",
    "run_single_point",
    "simulated_network_factory",
    "summarise_by_point",
    "sweep_tasks",
]
