"""Experiment harness: trial runner, figure sweeps, and ablations."""

from .ablations import (
    BaselineComparisonPoint,
    DiscoveryAblationPoint,
    PolicyAblationPoint,
    run_baseline_comparison,
    run_discovery_ablation,
    run_policy_ablation,
)
from .figures import (
    DEFAULT_PATH_LENGTHS,
    FIGURE4_HOST_COUNTS,
    FIGURE5_TASK_COUNTS,
    FIGURE6_TASK_COUNTS,
    default_runs,
    run_figure4,
    run_figure5,
    run_figure6,
    run_single_point,
)
from .trials import (
    TrialResult,
    adhoc_network_factory,
    build_trial_community,
    run_allocation_trial,
    simulated_network_factory,
)

__all__ = [
    "BaselineComparisonPoint",
    "DEFAULT_PATH_LENGTHS",
    "DiscoveryAblationPoint",
    "FIGURE4_HOST_COUNTS",
    "FIGURE5_TASK_COUNTS",
    "FIGURE6_TASK_COUNTS",
    "PolicyAblationPoint",
    "TrialResult",
    "adhoc_network_factory",
    "build_trial_community",
    "default_runs",
    "run_allocation_trial",
    "run_baseline_comparison",
    "run_discovery_ablation",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_policy_ablation",
    "run_single_point",
    "simulated_network_factory",
]
