"""``repro-trial-worker``: the worker side of the dispatch plane.

Run one of these per machine (or per NUMA node) and point it at a
coordinator::

    repro-trial-worker tcp://10.0.0.5:7209 --workers 8
    python -m repro.experiments.worker tcp://10.0.0.5:7209

The worker connects, announces itself with ``Hello``, and then serves
``TrialAssign`` frames until the coordinator says ``Goodbye`` (or the
connection drops).  Each sweep's deduplicated workload payload arrives
**once** as a ``WorkloadSegment`` — the same framed, zlib-compressed
encoding :mod:`repro.experiments.shared_inputs` publishes into shared
memory locally — and the worker re-publishes those exact bytes into *its
own* local shared-memory segment, so the process pool it fans trials
across warms its workload caches the same way a local parallel run would.
Results stream back as ``TrialResultMsg`` frames the moment each trial
finishes; heartbeats tick every ``heartbeat_interval`` seconds so the
coordinator can tell a slow trial from a dead machine.

Determinism: the worker runs :func:`repro.experiments.runner.execute_trial`
— the same entry point as the local pool — and a trial's outcome is a pure
function of its task, so where it runs never shows in the results.

``pool_workers=0`` runs trials inline on a single thread (no subprocesses)
— the mode the in-process integration tests and tiny demos use; the CLI
default is one pool process per CPU.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import threading
import uuid
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from functools import partial

from . import wire
from .dispatch import parse_dispatch_address
from .runner import _WORKLOADS, _execute_trial_attached, execute_trial
from .shared_inputs import SharedWorkloadSegment, decode_workloads


class TrialWorker:
    """One dispatch-plane worker (see module docstring).

    ``run()`` blocks until the coordinator disconnects or :meth:`stop` is
    called (thread-safe — the integration tests run workers on threads).
    ``fail_after_results`` is a test hook: after streaming that many
    results the worker aborts its connection mid-sweep *without* a
    ``Goodbye``, exactly like a kill -9, to exercise the coordinator's
    dead-worker reassignment.
    """

    def __init__(
        self,
        address: str,
        worker_id: str | None = None,
        pool_workers: int | None = None,
        max_inflight: int | None = None,
        heartbeat_interval: float = 2.0,
        fail_after_results: int | None = None,
    ) -> None:
        self.host, self.port = parse_dispatch_address(address)
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.pool_workers = (
            (os.cpu_count() or 1) if pool_workers is None else pool_workers
        )
        if self.pool_workers < 0:
            raise ValueError("pool_workers must be >= 0")
        self.max_inflight = (
            max(1, self.pool_workers) if max_inflight is None else max_inflight
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.heartbeat_interval = heartbeat_interval
        self.fail_after_results = fail_after_results
        self.trials_executed = 0
        self.segments_received = 0
        self.connected = threading.Event()
        self._stop_requested = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._segments: dict[int, SharedWorkloadSegment] = {}
        self._segment_names: dict[int, str] = {}

    # -- lifecycle ----------------------------------------------------------
    def run(self) -> int:
        """Serve until disconnect/stop; returns a process exit code."""

        try:
            asyncio.run(self._serve())
            return 0
        except ConnectionError as exc:
            print(f"{self.worker_id}: connection lost: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(
                f"{self.worker_id}: cannot reach tcp://{self.host}:{self.port}: {exc}",
                file=sys.stderr,
            )
            return 1
        finally:
            self._release_segments()

    def stop(self) -> None:
        """Ask a running worker to send ``Goodbye`` and exit (thread-safe)."""

        self._stop_requested.set()
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(lambda: None)  # wake the read loop
            except RuntimeError:
                pass  # already exited — nothing left to wake

    def _release_segments(self) -> None:
        for segment in self._segments.values():
            segment.unlink()
        self._segments.clear()
        self._segment_names.clear()

    # -- protocol loop ------------------------------------------------------
    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        pool = self._make_pool()
        inflight = 0
        results_sent = 0
        aborted = False
        heartbeat_task: asyncio.Task | None = None
        pending: set[asyncio.Task] = set()
        send_lock = asyncio.Lock()

        async def send(frame: wire.Frame) -> None:
            async with send_lock:
                writer.write(wire.encode_frame(frame))
                await writer.drain()

        async def heartbeats() -> None:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                await send(
                    wire.Heartbeat(worker_id=self.worker_id, inflight=inflight)
                )

        async def run_one(assign: wire.TrialAssign) -> None:
            nonlocal inflight, results_sent, aborted
            task = wire.task_from_wire(assign.task)
            segment_name = self._segment_names.get(assign.sweep_id, "")
            loop = asyncio.get_running_loop()
            try:
                if pool is None:
                    outcome = await loop.run_in_executor(
                        None, partial(execute_trial, task, timing=assign.timing)
                    )
                else:
                    outcome, _ = await loop.run_in_executor(
                        pool,
                        partial(
                            _execute_trial_attached,
                            task,
                            timing=assign.timing,
                            segment=segment_name,
                        ),
                    )
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # A trial this worker cannot execute (broken pool, broken
                # environment, or a genuinely failing task).  Dying loudly
                # hands the trial back to the coordinator's reassignment
                # path; if every worker chokes on it, the runner's local
                # fallback reproduces the error where the user can see it.
                print(
                    f"{self.worker_id}: trial {assign.task_index} failed: {exc}",
                    file=sys.stderr,
                )
                aborted = True
                writer.transport.abort()
                return
            finally:
                inflight -= 1
            self.trials_executed += 1
            if aborted:
                return
            await send(
                wire.TrialResultMsg(
                    sweep_id=assign.sweep_id,
                    task_index=assign.task_index,
                    worker_id=self.worker_id,
                    result=wire.result_to_wire(
                        outcome.result if outcome is not None else None
                    ),
                )
            )
            results_sent += 1
            if (
                self.fail_after_results is not None
                and results_sent >= self.fail_after_results
            ):
                # Test hook: die like a crashed machine — no Goodbye, no
                # half-sent frame, just a dead socket.
                aborted = True
                writer.transport.abort()

        try:
            await send(
                wire.Hello(
                    worker_id=self.worker_id,
                    max_inflight=self.max_inflight,
                    pool_workers=self.pool_workers if pool is not None else 0,
                )
            )
            self.connected.set()
            heartbeat_task = asyncio.create_task(heartbeats())
            decoder = wire.FrameDecoder()
            while not aborted:
                if self._stop_requested.is_set():
                    await send(wire.Goodbye(reason="worker stopped"))
                    break
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(64 * 1024), timeout=0.1
                    )
                except asyncio.TimeoutError:
                    continue
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    if isinstance(frame, wire.WorkloadSegment):
                        self._install_segment(frame)
                    elif isinstance(frame, wire.TrialAssign):
                        inflight += 1
                        runner_task = asyncio.create_task(run_one(frame))
                        pending.add(runner_task)
                        runner_task.add_done_callback(pending.discard)
                    elif isinstance(frame, wire.Goodbye):
                        raise _CoordinatorGoodbye()
        except (_CoordinatorGoodbye, ConnectionError):
            pass
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            for runner_task in pending:
                runner_task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already aborted
                pass
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _make_pool(self) -> ProcessPoolExecutor | None:
        if self.pool_workers == 0:
            return None
        try:
            return ProcessPoolExecutor(max_workers=self.pool_workers)
        except (OSError, ImportError, BrokenExecutor):
            # No usable subprocess support: inline execution still serves.
            return None

    def _install_segment(self, frame: wire.WorkloadSegment) -> None:
        """Cache a sweep's workloads and re-publish them into local shm."""

        self.segments_received += 1
        try:
            workloads = decode_workloads(frame.payload)
        except Exception:  # corrupt payload: trials regenerate from seeds
            return
        for key, workload in workloads.items():
            _WORKLOADS.setdefault(key, workload)
        if self.pool_workers == 0:
            return
        # Previous sweeps' segments are dead weight now; this worker's pool
        # holds warm caches already.
        for sweep_id in list(self._segments):
            if sweep_id != frame.sweep_id:
                self._segments.pop(sweep_id).unlink()
                self._segment_names.pop(sweep_id, None)
        if frame.sweep_id in self._segments:
            return
        try:
            segment = SharedWorkloadSegment(frame.payload, raw_bytes=frame.raw_bytes)
        except (OSError, ValueError):
            return  # no shared memory here: pool workers regenerate
        self._segments[frame.sweep_id] = segment
        self._segment_names[frame.sweep_id] = segment.name


class _CoordinatorGoodbye(Exception):
    """Internal: the coordinator ended the session cleanly."""


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``repro-trial-worker``)."""

    parser = argparse.ArgumentParser(
        prog="repro-trial-worker",
        description=(
            "Serve dispatched trials to a DispatchCoordinator "
            "(TrialRunner(dispatch='tcp://host:port'))."
        ),
    )
    parser.add_argument(
        "address", help="coordinator address, e.g. tcp://127.0.0.1:7209"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="local process-pool size (default: all cores; 0 = inline, no pool)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="trials held in flight at once (default: pool size)",
    )
    parser.add_argument("--id", default=None, help="worker id (default: random)")
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        help="seconds between heartbeats (default: 2)",
    )
    args = parser.parse_args(argv)
    worker = TrialWorker(
        args.address,
        worker_id=args.id,
        pool_workers=args.workers,
        max_inflight=args.max_inflight,
        heartbeat_interval=args.heartbeat,
    )
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
