"""Single-trial runner used by every evaluation experiment.

A *trial* follows the paper's Section 5 procedure exactly:

1. take a pre-generated supergraph workload of the chosen size;
2. distribute its fragments randomly and evenly across the chosen number of
   hosts, and independently distribute the corresponding services;
3. draw a guaranteed-satisfiable specification whose difficulty is the
   requested path length;
4. give the specification to the initiating host and measure the time until
   every task of the resulting workflow has been allocated to some host.

The measured time combines the wall-clock time spent running the real
construction and allocation code (the dominant term for the single-process
simulation of Figures 4 and 5) with the simulated network latency accrued by
the messages exchanged (the extra term that distinguishes the "empirical"
802.11g runs of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..core.solver import Solver
from ..core.specification import Specification
from ..host.community import Community
from ..host.workspace import Workspace, WorkflowPhase
from ..net.adhoc import AdHocWirelessNetwork
from ..net.faults import FaultPlane, HostCrash, LinkFaultPolicy
from ..net.simnet import SimulatedNetwork
from ..net.transport import CommunicationsLayer
from ..mobility.geometry import Point
from ..mobility.models import MobilityModel
from ..sim.events import EventScheduler
from ..sim.randomness import derive_rng, derive_seed, sample_without_replacement
from ..workloads.supergraph_gen import GeneratedWorkload


@dataclass(frozen=True)
class TrialResult:
    """Outcome and timings of one construction+allocation trial.

    ``nodes_recolored`` / ``cache_hits`` / ``solver`` expose the
    construction engine's effort counters (see
    :class:`~repro.core.construction.ConstructionStatistics`) so the
    incremental-vs-scratch benchmarks can compare colouring work, not just
    wall-clock time.  ``fragments_reused`` / ``remotes_skipped`` expose the
    shared knowledge plane's reuse, and ``fragment_messages`` /
    ``fragment_bytes`` the discovery traffic (fragment queries plus
    responses) the trial actually put on the wire.  ``unexpected_labels``
    sums, over every host of the community, the label deliveries that
    matched no pending invocation (late or duplicate execution data).

    The churn counters are populated by :func:`run_churn_trial`:
    ``hosts_crashed`` hosts fail-stopped on schedule, ``messages_faulted``
    fault events the plane injected (drops + duplicates + delays),
    ``retries`` re-sent solicitations/awards/discovery queries,
    ``reauctions`` tasks re-awarded because their winner died before
    acknowledging, ``workflows_recovered`` whether the workflow finished
    in a repair revision rather than the original, and
    ``recovery_seconds`` the simulated time from the first failure to
    final completion (0 when no repair was needed).

    With the durable state plane on (``durability=``),
    ``invocations_resumed`` counts in-flight service invocations restarted
    hosts re-armed from their journals instead of losing,
    ``workflows_resumed`` the in-progress workflows a restarted initiator
    picked back up, and ``labels_replayed`` the published labels restarted
    producers re-sent from their journaled publication caches — all 0 when
    durability is off.
    """

    succeeded: bool
    allocation_seconds: float
    wall_seconds: float
    sim_seconds: float
    workflow_tasks: int
    messages_sent: int
    bytes_sent: int
    fragments_collected: int
    failure_reason: str = ""
    solver: str = ""
    nodes_recolored: int = 0
    cache_hits: int = 0
    distinct_winners: int = 0
    fragments_reused: int = 0
    remotes_skipped: int = 0
    fragment_messages: int = 0
    fragment_bytes: int = 0
    unexpected_labels: int = 0
    hosts_crashed: int = 0
    messages_faulted: int = 0
    retries: int = 0
    reauctions: int = 0
    workflows_recovered: int = 0
    recovery_seconds: float = 0.0
    invocations_resumed: int = 0
    workflows_resumed: int = 0
    labels_replayed: int = 0

    def deterministic_copy(self) -> "TrialResult":
        """This result with the wall-clock timing components zeroed.

        Everything else in a trial is a pure function of its seeds, so two
        runs of the same trial — sequential or parallel, on any machine —
        agree exactly on this view.  The parallel-runner equivalence tests
        compare these copies; ``allocation_seconds`` collapses onto the
        simulated component.
        """

        return replace(self, wall_seconds=0.0, allocation_seconds=self.sim_seconds)


def simulated_network_factory(seed: int = 0) -> Callable[[EventScheduler], CommunicationsLayer]:
    """The paper's single-JVM simulated network: zero latency, fully connected."""

    def factory(scheduler: EventScheduler) -> CommunicationsLayer:
        return SimulatedNetwork(scheduler, base_latency=0.0, jitter=0.0, seed=seed)

    return factory


def adhoc_network_factory(
    seed: int = 0,
    radio_range: float = 150.0,
    jitter: float = 0.0005,
    multi_hop: bool = False,
    incremental_grid: bool = True,
    predictive_links: bool = True,
    vectorized: bool | None = None,
) -> Callable[[EventScheduler], CommunicationsLayer]:
    """An 802.11g-like ad hoc wireless network.

    The default (``multi_hop=False``) matches the paper's Figure 6 setup of
    a few laptops in mutual radio range; pass ``multi_hop=True`` for the
    scaled scenarios where hundreds of hosts relay for each other over
    AODV-style routes.  ``incremental_grid=False`` restores the per-tick
    snapshot rebuild (the event-driven-maintenance benchmark baseline),
    ``predictive_links=False`` the purely lazy link-epoch maintenance (the
    predictive-scheduling equivalence baseline), and ``vectorized``
    selects the batched NumPy geometry kernels (``None``: automatic when
    NumPy is available; ``False``: the scalar per-host loops, the
    kernel-equivalence baseline).
    """

    def factory(scheduler: EventScheduler) -> CommunicationsLayer:
        return AdHocWirelessNetwork(
            scheduler,
            radio_range=radio_range,
            jitter=jitter,
            multi_hop=multi_hop,
            seed=seed,
            incremental_grid=incremental_grid,
            predictive_links=predictive_links,
            vectorized=vectorized,
        )

    return factory


def build_trial_community(
    workload: GeneratedWorkload,
    num_hosts: int,
    seed: int,
    network_factory: Callable[[EventScheduler], CommunicationsLayer] | None = None,
    solver: Solver | str | None = None,
    mobility_factory: Callable[[int], "MobilityModel | Point"] | None = None,
    share_supergraph: bool = True,
    batch_auctions: bool = True,
    batch_execution: bool = True,
    fault_injection: bool = False,
    enable_recovery: bool = False,
    max_repair_attempts: int = 3,
    durability=None,
    durable_outputs: bool = True,
) -> Community:
    """Set up a community for one trial (fragments/services dealt out randomly).

    ``solver`` selects the construction strategy installed on every host, so
    ablations can sweep strategies with no other change to the procedure.
    ``mobility_factory`` maps a host index to its placement (a fixed
    :class:`~repro.mobility.geometry.Point` or a mobility model); the
    default is the paper-style line of hosts 20 m apart.  The scaled ad hoc
    scenarios use it to scatter hundreds of mobile hosts over a site.
    ``share_supergraph=False`` restores per-workspace supergraphs on every
    host (the pre-knowledge-plane behaviour, kept for equivalence tests and
    the discovery-scaling benchmark baseline), ``batch_auctions=False`` the
    per-(task, participant) auction protocol, and ``batch_execution=False``
    the per-label / per-task execution protocol (same outcomes, more
    messages — the allocation- and execution-scaling benchmark baselines).
    """

    if num_hosts < 1:
        raise ValueError("a trial needs at least one host")
    rng = derive_rng(seed, "partition", workload.num_tasks, num_hosts)
    fragment_groups = workload.partition_fragments(num_hosts, rng)
    service_groups = workload.partition_services(num_hosts, rng)
    community = Community(network_factory=network_factory)
    for index in range(num_hosts):
        mobility = (
            mobility_factory(index)
            if mobility_factory is not None
            else Point(20.0 * index, 0.0)
        )
        host = community.add_host(
            f"host-{index}",
            fragments=fragment_groups[index],
            services=service_groups[index],
            mobility=mobility,
            solver=solver,
            share_supergraph=share_supergraph,
            batch_auctions=batch_auctions,
            batch_execution=batch_execution,
            fault_injection=fault_injection,
            enable_recovery=enable_recovery,
            max_repair_attempts=max_repair_attempts,
            durability=durability,
            durable_outputs=durable_outputs,
        )
        del host
    return community


def run_allocation_trial(
    workload: GeneratedWorkload,
    num_hosts: int,
    specification: Specification,
    seed: int,
    network_factory: Callable[[EventScheduler], CommunicationsLayer] | None = None,
    initiator_index: int = 0,
    solver: Solver | str | None = None,
    mobility_factory: Callable[[int], "MobilityModel | Point"] | None = None,
) -> TrialResult:
    """Run one construction+allocation trial and return its measurements."""

    community = build_trial_community(
        workload,
        num_hosts,
        seed,
        network_factory=network_factory,
        solver=solver,
        mobility_factory=mobility_factory,
    )
    initiator = f"host-{initiator_index % num_hosts}"
    workspace = community.submit_specification(initiator, specification)
    community.run_until_allocated(workspace, max_sim_seconds=3_600.0)
    return trial_result_from_workspace(community, workspace)


def run_churn_trial(
    workload: GeneratedWorkload,
    num_hosts: int,
    specification: Specification,
    seed: int,
    network_factory: Callable[[EventScheduler], CommunicationsLayer] | None = None,
    initiator_index: int = 0,
    solver: Solver | str | None = None,
    mobility_factory: Callable[[int], "MobilityModel | Point"] | None = None,
    drop_probability: float = 0.1,
    duplicate_probability: float = 0.02,
    extra_delay_mean: float = 0.0,
    num_crashes: int = 2,
    crash_window: tuple[float, float] = (10.0, 120.0),
    outage: float = 60.0,
    max_repair_attempts: int = 6,
    max_sim_seconds: float = 3_600.0,
    durability=None,
    durable_outputs: bool = True,
    crashes: "tuple[HostCrash, ...] | None" = None,
) -> TrialResult:
    """Run one end-to-end trial on a hostile network and measure survival.

    The community runs with ``fault_injection`` and recovery on, behind a
    seeded :class:`~repro.net.faults.FaultPlane`: every link drops,
    duplicates, and delays messages per the given probabilities, and
    ``num_crashes`` non-initiator hosts fail-stop at times drawn from
    ``crash_window``, restarting ``outage`` simulated seconds later.  The
    trial pumps the scheduler to quiescence (bounded by
    ``max_sim_seconds``), follows the workflow's repair chain to its final
    revision, and reports the churn counters alongside the usual
    measurements.  Churn trials default to a deeper repair ladder
    (``max_repair_attempts=6``) than clean runs: a dropped label delivery
    costs one repair round, so survival probability compounds per round.
    ``durability`` (e.g. ``"memory"``) additionally gives every host a
    durable state plane, so restarted victims resume their commitments and
    in-flight invocations instead of riding the full repair ladder;
    ``durable_outputs=False`` drops the tier-2 output journaling from that
    plane (restarted producers go silent again), isolating what journaled
    publications buy.  ``crashes`` replaces the randomly sampled fail-stop
    schedule with an explicit one (see :func:`plan_producer_crash`);
    ``num_crashes``/``crash_window``/``outage`` are ignored when it is
    given.
    Everything is a pure function of ``seed``: re-running
    with the same arguments reproduces the same faults and the same result.
    """

    community = build_trial_community(
        workload,
        num_hosts,
        seed,
        network_factory=network_factory,
        solver=solver,
        mobility_factory=mobility_factory,
        fault_injection=True,
        enable_recovery=True,
        max_repair_attempts=max_repair_attempts,
        durability=durability,
        durable_outputs=durable_outputs,
    )
    initiator = f"host-{initiator_index % num_hosts}"
    if crashes is None:
        churn_rng = derive_rng(seed, "churn", num_hosts, num_crashes)
        candidates = [
            host_id for host_id in community.host_ids if host_id != initiator
        ]
        victims = sample_without_replacement(
            churn_rng, candidates, min(num_crashes, len(candidates))
        )
        sampled = []
        for victim in victims:
            crash_at = churn_rng.uniform(*crash_window)
            sampled.append(
                HostCrash(
                    host_id=victim,
                    crash_at=crash_at,
                    restart_at=crash_at + outage,
                )
            )
        crashes = tuple(sampled)
    plane = FaultPlane(
        seed=derive_seed(seed, "faults", num_hosts),
        default_policy=LinkFaultPolicy(
            drop_probability=drop_probability,
            duplicate_probability=duplicate_probability,
            extra_delay_mean=extra_delay_mean,
        ),
        crashes=tuple(crashes),
    )
    community.install_fault_plane(plane)

    workspace = community.submit_specification(initiator, specification)
    community.run_idle(max_sim_seconds=max_sim_seconds)

    manager = community.host(initiator).workflow_manager
    final = manager.final_workspace(workspace.workflow_id) or workspace
    result = trial_result_from_workspace(community, final)

    recovered = final is not workspace and final.phase is WorkflowPhase.COMPLETED
    recovery_seconds = 0.0
    if recovered:
        first_failure = workspace.timestamps.get("failed")
        completed = final.timestamps.get("completed")
        if first_failure is not None and completed is not None:
            recovery_seconds = completed.sim_time - first_failure.sim_time
    retries = sum(
        host.auction_manager.retries + host.workflow_manager.discovery_retries
        for host in community
    )
    reauctions = sum(host.auction_manager.reauctions for host in community)
    invocations_resumed = sum(
        host.execution_manager.invocations_resumed for host in community
    )
    labels_replayed = sum(
        host.execution_manager.labels_replayed for host in community
    )
    return replace(
        result,
        succeeded=final.phase is WorkflowPhase.COMPLETED,
        hosts_crashed=community.hosts_crashed,
        messages_faulted=plane.statistics.faulted,
        retries=retries,
        reauctions=reauctions,
        workflows_recovered=1 if recovered else 0,
        recovery_seconds=recovery_seconds,
        invocations_resumed=invocations_resumed,
        workflows_resumed=community.workflows_resumed,
        labels_replayed=labels_replayed,
    )


def plan_producer_crash(
    workload: GeneratedWorkload,
    num_hosts: int,
    specification: Specification,
    seed: int,
    network_factory: Callable[[EventScheduler], CommunicationsLayer] | None = None,
    initiator_index: int = 0,
    solver: Solver | str | None = None,
    mobility_factory: Callable[[int], "MobilityModel | Point"] | None = None,
    lead: float = 1.0,
    outage: float = 25.0,
    max_sim_seconds: float = 3_600.0,
) -> tuple[HostCrash, ...]:
    """Derive a crash schedule that kills a mid-execution producer.

    Runs a crash-free probe of the same seeded trial to learn when the
    earliest cross-host label is published and by whom, then returns two
    fail-stops for :func:`run_churn_trial`'s ``crashes`` parameter: the
    label's *consumer* dies ``lead`` seconds before publication (the
    delivery is sent into the void), the *producer* ``lead`` seconds after
    (its in-memory publication cache dies with it).  The producer restarts
    before the consumer, so by the time the resumed consumer asks for the
    missing label the producer is back — with output journaling on it
    answers from its restored cache and the original revision completes;
    with it off the request goes unanswered and the initiator rides the
    repair ladder.  The probe changes nothing the real run observes before
    the first crash, so the planned times line up exactly.
    """

    if outage <= 2.0 * lead:
        raise ValueError("outage must exceed 2*lead so restarts stay ordered")
    community = build_trial_community(
        workload,
        num_hosts,
        seed,
        network_factory=network_factory,
        solver=solver,
        mobility_factory=mobility_factory,
        fault_injection=True,
        enable_recovery=True,
    )
    plane = FaultPlane(
        seed=derive_seed(seed, "faults", num_hosts),
        default_policy=LinkFaultPolicy(
            drop_probability=0.0, duplicate_probability=0.0, extra_delay_mean=0.0
        ),
    )
    community.install_fault_plane(plane)
    initiator = f"host-{initiator_index % num_hosts}"
    community.submit_specification(initiator, specification)
    community.run_idle(max_sim_seconds=max_sim_seconds)

    best: tuple[float, str, str] | None = None
    for host in community:
        if host.host_id == initiator:
            continue
        for outcome in host.execution_manager.outcomes:
            if not outcome.succeeded:
                continue
            destinations = outcome.commitment.output_destinations
            for label, receivers in destinations.items():
                for consumer in receivers:
                    if consumer in (host.host_id, initiator):
                        continue
                    if best is None or outcome.completed_at < best[0]:
                        best = (outcome.completed_at, host.host_id, consumer)
    if best is None:
        raise ValueError(
            "probe trial produced no cross-host label between non-initiator "
            "hosts; nothing to target"
        )
    published_at, producer, consumer = best
    return (
        HostCrash(
            host_id=consumer,
            crash_at=published_at - lead,
            restart_at=published_at + outage + lead,
        ),
        HostCrash(
            host_id=producer,
            crash_at=published_at + lead,
            restart_at=published_at + outage,
        ),
    )


def trial_result_from_workspace(
    community: Community, workspace: Workspace
) -> TrialResult:
    """Extract the measurements of a finished (or failed) trial."""

    timing = workspace.time_to_allocation()
    succeeded = workspace.is_allocated and workspace.phase in (
        WorkflowPhase.EXECUTING,
        WorkflowPhase.COMPLETED,
    )
    sim_seconds, wall_seconds = timing if timing is not None else (0.0, 0.0)
    stats = community.network.statistics
    workflow = workspace.workflow
    construction = workspace.construction_statistics
    outcome = workspace.allocation_outcome
    winners = len(set(outcome.allocation.values())) if outcome is not None else 0
    return TrialResult(
        succeeded=succeeded,
        allocation_seconds=wall_seconds + sim_seconds,
        wall_seconds=wall_seconds,
        sim_seconds=sim_seconds,
        workflow_tasks=len(workflow.task_names) if workflow is not None else 0,
        messages_sent=stats.messages_sent,
        bytes_sent=stats.bytes_sent,
        fragments_collected=workspace.fragments_collected,
        failure_reason=workspace.failure_reason,
        solver=construction.solver if construction else "",
        nodes_recolored=construction.nodes_recolored if construction else 0,
        cache_hits=construction.cache_hits if construction else 0,
        distinct_winners=winners,
        fragments_reused=workspace.fragments_reused,
        remotes_skipped=workspace.remotes_skipped,
        fragment_messages=stats.kind_count("FragmentQuery", "FragmentResponse"),
        fragment_bytes=stats.kind_bytes("FragmentQuery", "FragmentResponse"),
        unexpected_labels=sum(
            host.execution_manager.unexpected_labels for host in community
        ),
    )
