"""Pluggable persistence backends for the durable state plane.

A backend stores two things for one host:

* an **append-only journal** of opaque record payloads, and
* at most one **snapshot** blob that supersedes every record appended
  before it was written (:meth:`DurabilityBackend.write_snapshot`
  atomically installs the snapshot *and* truncates the journal).

Payloads are ``bytes``; serialisation policy (what a record means) belongs
to :mod:`repro.durability.plane`, storage policy (where the bytes survive)
belongs here — the RAFDA-style split between application logic and
persistence policy.

Three implementations ship:

:class:`InMemoryJournal`
    Keeps the bytes in process memory on the *community* side (the host
    object itself dies on a crash), modelling the flash storage of the
    paper's mobile devices without touching the filesystem.  This is the
    backend churn trials use.

:class:`FileJournal`
    A real append-only file plus a snapshot file.  Every journal record is
    framed as ``<u32 length><u32 crc32><payload>``; replay stops at the
    first incomplete or corrupt frame, so a process killed mid-append
    recovers to the last *complete* record, never to a corrupt state.
    Snapshots are written to a temporary file and installed with an atomic
    rename before the journal is truncated, so a crash during compaction
    loses no state either (the old snapshot + full journal still replay).
    The parent directory is fsynced after the rename and after the
    truncation, so the compaction sequence survives a whole-machine crash
    (power loss), not just a process kill.

:class:`SQLiteJournal`
    A WAL-mode single-file SQLite database holding journal, snapshot, and
    schema metadata in one place.  Appends are single-row transactions;
    snapshot installation and journal truncation are *one* transaction, so
    a crash mid-compaction observes either the old state or the new,
    never a snapshot without its truncation.  The schema is versioned and
    migrated forward on open, so a journal written by an older release
    keeps replaying under a newer one.
"""

from __future__ import annotations

import os
import sqlite3
import struct
import tempfile
import zlib
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterator

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


class DurabilityBackend(ABC):
    """Append-only journal + snapshot storage for one host."""

    # -- journal ----------------------------------------------------------
    @abstractmethod
    def append(self, payload: bytes) -> None:
        """Durably append one opaque record payload to the journal."""

    @abstractmethod
    def payloads(self) -> list[bytes]:
        """Every complete journal record since the last snapshot, in order."""

    @property
    @abstractmethod
    def journal_length(self) -> int:
        """Number of complete records currently in the journal."""

    # -- snapshot ---------------------------------------------------------
    @abstractmethod
    def write_snapshot(self, blob: bytes) -> None:
        """Install ``blob`` as the snapshot and truncate the journal.

        The snapshot supersedes every record appended so far; records
        appended afterwards apply on top of it.
        """

    @abstractmethod
    def load_snapshot(self) -> bytes | None:
        """The current snapshot blob, or ``None`` when none was written."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any resources (files) held by the backend."""


class InMemoryJournal(DurabilityBackend):
    """Journal + snapshot kept in process memory (simulated flash storage).

    The backend object is owned by the :class:`~repro.host.community.Community`,
    not by the host, so it survives the host's crash exactly like the flash
    chip survives the device's operating system.
    """

    def __init__(self) -> None:
        self._journal: list[bytes] = []
        self._snapshot: bytes | None = None
        self.appends = 0
        self.snapshots_written = 0

    def append(self, payload: bytes) -> None:
        self._journal.append(bytes(payload))
        self.appends += 1

    def payloads(self) -> list[bytes]:
        return list(self._journal)

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    def write_snapshot(self, blob: bytes) -> None:
        self._snapshot = bytes(blob)
        self._journal.clear()
        self.snapshots_written += 1

    def load_snapshot(self) -> bytes | None:
        return self._snapshot

    def __repr__(self) -> str:
        return (
            f"InMemoryJournal(records={len(self._journal)}, "
            f"snapshot={self._snapshot is not None})"
        )


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table to stable storage.

    An ``os.replace`` or truncation is durable only once the *directory*
    holding the entry is synced; until then a power loss may roll the
    rename back even though the file's own bytes were fsynced.  Platforms
    whose directory handles reject fsync (some network filesystems) are
    tolerated — the data fsyncs still give process-kill durability.
    """

    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _iter_frames(data: bytes) -> Iterator[bytes]:
    """Yield complete, checksummed payloads; stop at a truncated/corrupt tail."""

    offset = 0
    total = len(data)
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            return  # torn tail: the final append never finished
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt frame: everything after it is untrustworthy
        yield payload
        offset = end


class FileJournal(DurabilityBackend):
    """Append-only journal file + snapshot file for one host.

    Parameters
    ----------
    directory:
        Where the two files live (created if missing).
    name:
        Base name of the files (``<name>.journal`` / ``<name>.snapshot``);
        path separators are squashed so any host id is usable.
    """

    def __init__(self, directory: str | Path, name: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        safe = name.replace(os.sep, "_").replace("/", "_")
        self.journal_path = self.directory / f"{safe}.journal"
        self.snapshot_path = self.directory / f"{safe}.snapshot"
        self.appends = 0
        self.snapshots_written = 0
        self._record_count: int | None = None

    # -- journal ----------------------------------------------------------
    def append(self, payload: bytes) -> None:
        if self._record_count is None:
            self._record_count = len(self.payloads())
        with open(self.journal_path, "ab") as journal:
            journal.write(_frame(payload))
            journal.flush()
            os.fsync(journal.fileno())
        self._record_count += 1
        self.appends += 1

    def payloads(self) -> list[bytes]:
        try:
            data = self.journal_path.read_bytes()
        except FileNotFoundError:
            return []
        return list(_iter_frames(data))

    @property
    def journal_length(self) -> int:
        if self._record_count is None:
            self._record_count = len(self.payloads())
        return self._record_count

    # -- snapshot ---------------------------------------------------------
    def write_snapshot(self, blob: bytes) -> None:
        # Install the snapshot first (atomic rename), truncate the journal
        # second: a crash between the two steps leaves snapshot + stale
        # journal, whose records are idempotent re-applications of state the
        # snapshot already holds — replay stays correct either way.
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.snapshot_path.name, dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as tmp:
                tmp.write(_frame(blob))
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_name, self.snapshot_path)
            _fsync_dir(self.directory)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with open(self.journal_path, "wb") as journal:
            journal.flush()
            os.fsync(journal.fileno())
        _fsync_dir(self.directory)
        self._record_count = 0
        self.snapshots_written += 1

    def load_snapshot(self) -> bytes | None:
        try:
            data = self.snapshot_path.read_bytes()
        except FileNotFoundError:
            return None
        for payload in _iter_frames(data):
            return payload  # exactly one frame per snapshot file
        return None  # torn or corrupt snapshot: treat as absent

    def __repr__(self) -> str:
        return f"FileJournal({str(self.journal_path)!r})"


SQLITE_SCHEMA_VERSION = 2
"""Current on-disk schema of :class:`SQLiteJournal` databases.

Version history:

* **v1** — ``journal(seq, payload)``, ``snapshot(id, blob)``, ``meta``.
* **v2** — adds a ``crc`` column (crc32 of the payload/blob) to both
  tables, giving the SQLite backend the same row-level corruption fence
  the :class:`FileJournal` frames have: replay stops at the first record
  whose checksum disagrees, and a corrupt snapshot is treated as absent.
"""


def _migrate_sqlite_v1_to_v2(conn: sqlite3.Connection) -> None:
    """Add the crc columns and backfill them from the stored bytes."""

    conn.execute("ALTER TABLE journal ADD COLUMN crc INTEGER")
    rows = conn.execute("SELECT seq, payload FROM journal").fetchall()
    for seq, payload in rows:
        conn.execute(
            "UPDATE journal SET crc = ? WHERE seq = ?", (zlib.crc32(payload), seq)
        )
    conn.execute("ALTER TABLE snapshot ADD COLUMN crc INTEGER")
    snap = conn.execute("SELECT blob FROM snapshot WHERE id = 1").fetchone()
    if snap is not None:
        conn.execute(
            "UPDATE snapshot SET crc = ? WHERE id = 1", (zlib.crc32(snap[0]),)
        )


#: version n -> in-place migration to version n + 1, applied in sequence on
#: open.  Every released schema change must add exactly one entry here.
_SQLITE_MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_sqlite_v1_to_v2,
}


class SQLiteJournal(DurabilityBackend):
    """Journal + snapshot in one WAL-mode SQLite database file.

    Parameters
    ----------
    directory:
        Where the database lives (created if missing).
    name:
        Base name of the database file (``<name>.sqlite``); path
        separators are squashed so any host id is usable.

    Appends commit one journal row per record; ``write_snapshot`` replaces
    the snapshot row *and* deletes the journal rows in a single
    transaction, so compaction is atomic even against power loss
    (``synchronous=FULL`` fsyncs the WAL on every commit).  Opening a
    database written by an older release migrates its schema forward
    through :data:`_SQLITE_MIGRATIONS` before the first read.
    """

    def __init__(self, directory: str | Path, name: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        safe = name.replace(os.sep, "_").replace("/", "_")
        self.db_path = self.directory / f"{safe}.sqlite"
        # isolation_level=None: autocommit, with explicit BEGIN/COMMIT where
        # multi-statement atomicity matters (snapshot + truncate).
        self._conn = sqlite3.connect(str(self.db_path), isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        #: Forward migrations applied while opening this database.
        self.schema_migrations = 0
        self._ensure_schema()
        self.appends = 0
        self.snapshots_written = 0
        self._record_count: int | None = None

    # -- schema -----------------------------------------------------------
    def _ensure_schema(self) -> None:
        exists = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        if exists is not None:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            version = int(row[0]) if row is not None else 1
            if version > SQLITE_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.db_path} has schema version {version}, newer than "
                    f"this release's {SQLITE_SCHEMA_VERSION}; refusing to "
                    "write records an older reader would misinterpret"
                )
            if version == SQLITE_SCHEMA_VERSION:
                # Current schema: opening stays read-only (no write
                # transaction, no WAL growth just for looking).
                return
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            if exists is None:
                self._conn.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value INTEGER NOT NULL)"
                )
                self._conn.execute(
                    "CREATE TABLE journal ("
                    "seq INTEGER PRIMARY KEY AUTOINCREMENT, "
                    "payload BLOB NOT NULL, crc INTEGER NOT NULL)"
                )
                self._conn.execute(
                    "CREATE TABLE snapshot ("
                    "id INTEGER PRIMARY KEY CHECK (id = 1), "
                    "blob BLOB NOT NULL, crc INTEGER NOT NULL)"
                )
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (SQLITE_SCHEMA_VERSION,),
                )
            else:
                while version < SQLITE_SCHEMA_VERSION:
                    _SQLITE_MIGRATIONS[version](self._conn)
                    version += 1
                    self.schema_migrations += 1
                self._conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (SQLITE_SCHEMA_VERSION,),
                )
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    @property
    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0])

    # -- journal ----------------------------------------------------------
    def append(self, payload: bytes) -> None:
        payload = bytes(payload)
        if self._record_count is None:
            self._record_count = len(self.payloads())
        self._conn.execute(
            "INSERT INTO journal (payload, crc) VALUES (?, ?)",
            (payload, zlib.crc32(payload)),
        )
        self._record_count += 1
        self.appends += 1

    def payloads(self) -> list[bytes]:
        rows = self._conn.execute(
            "SELECT payload, crc FROM journal ORDER BY seq"
        ).fetchall()
        result: list[bytes] = []
        for payload, crc in rows:
            payload = bytes(payload)
            if crc is None or zlib.crc32(payload) != crc:
                break  # corrupt row: everything after it is untrustworthy
            result.append(payload)
        return result

    @property
    def journal_length(self) -> int:
        if self._record_count is None:
            self._record_count = len(self.payloads())
        return self._record_count

    # -- snapshot ---------------------------------------------------------
    def write_snapshot(self, blob: bytes) -> None:
        blob = bytes(blob)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute("DELETE FROM snapshot")
            self._conn.execute(
                "INSERT INTO snapshot (id, blob, crc) VALUES (1, ?, ?)",
                (blob, zlib.crc32(blob)),
            )
            self._conn.execute("DELETE FROM journal")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")
        self._record_count = 0
        self.snapshots_written += 1

    def load_snapshot(self) -> bytes | None:
        row = self._conn.execute(
            "SELECT blob, crc FROM snapshot WHERE id = 1"
        ).fetchone()
        if row is None:
            return None
        blob, crc = bytes(row[0]), row[1]
        if crc is None or zlib.crc32(blob) != crc:
            return None  # corrupt snapshot: treat as absent
        return blob

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"SQLiteJournal({str(self.db_path)!r})"


BackendFactory = Callable[[str], DurabilityBackend]


def make_backend(
    spec: "str | bool | BackendFactory | None",
    host_id: str,
    directory: str | Path | None = None,
) -> DurabilityBackend | None:
    """Resolve a ``durability=`` flag value into a backend (or ``None``).

    ``None``/``False`` — durability off.  ``True`` or ``"memory"`` — an
    :class:`InMemoryJournal` (simulated flash).  ``"file"`` — a
    :class:`FileJournal` under ``directory``.  ``"sqlite"`` — a
    :class:`SQLiteJournal` database under ``directory``.  A callable is
    treated as a factory ``host_id -> backend`` for custom backends.
    """

    if spec is None or spec is False:
        return None
    if callable(spec):
        return spec(host_id)
    if spec is True or spec == "memory":
        return InMemoryJournal()
    if spec == "file":
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-durability-")
        return FileJournal(directory, host_id)
    if spec == "sqlite":
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-durability-")
        return SQLiteJournal(directory, host_id)
    raise ValueError(
        f"unknown durability spec {spec!r}: expected None, 'memory', 'file', "
        "'sqlite', or a factory callable"
    )
