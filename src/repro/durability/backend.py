"""Pluggable persistence backends for the durable state plane.

A backend stores two things for one host:

* an **append-only journal** of opaque record payloads, and
* at most one **snapshot** blob that supersedes every record appended
  before it was written (:meth:`DurabilityBackend.write_snapshot`
  atomically installs the snapshot *and* truncates the journal).

Payloads are ``bytes``; serialisation policy (what a record means) belongs
to :mod:`repro.durability.plane`, storage policy (where the bytes survive)
belongs here — the RAFDA-style split between application logic and
persistence policy.

Two implementations ship:

:class:`InMemoryJournal`
    Keeps the bytes in process memory on the *community* side (the host
    object itself dies on a crash), modelling the flash storage of the
    paper's mobile devices without touching the filesystem.  This is the
    backend churn trials use.

:class:`FileJournal`
    A real append-only file plus a snapshot file.  Every journal record is
    framed as ``<u32 length><u32 crc32><payload>``; replay stops at the
    first incomplete or corrupt frame, so a process killed mid-append
    recovers to the last *complete* record, never to a corrupt state.
    Snapshots are written to a temporary file and installed with an atomic
    rename before the journal is truncated, so a crash during compaction
    loses no state either (the old snapshot + full journal still replay).
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterator

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


class DurabilityBackend(ABC):
    """Append-only journal + snapshot storage for one host."""

    # -- journal ----------------------------------------------------------
    @abstractmethod
    def append(self, payload: bytes) -> None:
        """Durably append one opaque record payload to the journal."""

    @abstractmethod
    def payloads(self) -> list[bytes]:
        """Every complete journal record since the last snapshot, in order."""

    @property
    @abstractmethod
    def journal_length(self) -> int:
        """Number of complete records currently in the journal."""

    # -- snapshot ---------------------------------------------------------
    @abstractmethod
    def write_snapshot(self, blob: bytes) -> None:
        """Install ``blob`` as the snapshot and truncate the journal.

        The snapshot supersedes every record appended so far; records
        appended afterwards apply on top of it.
        """

    @abstractmethod
    def load_snapshot(self) -> bytes | None:
        """The current snapshot blob, or ``None`` when none was written."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any resources (files) held by the backend."""


class InMemoryJournal(DurabilityBackend):
    """Journal + snapshot kept in process memory (simulated flash storage).

    The backend object is owned by the :class:`~repro.host.community.Community`,
    not by the host, so it survives the host's crash exactly like the flash
    chip survives the device's operating system.
    """

    def __init__(self) -> None:
        self._journal: list[bytes] = []
        self._snapshot: bytes | None = None
        self.appends = 0
        self.snapshots_written = 0

    def append(self, payload: bytes) -> None:
        self._journal.append(bytes(payload))
        self.appends += 1

    def payloads(self) -> list[bytes]:
        return list(self._journal)

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    def write_snapshot(self, blob: bytes) -> None:
        self._snapshot = bytes(blob)
        self._journal.clear()
        self.snapshots_written += 1

    def load_snapshot(self) -> bytes | None:
        return self._snapshot

    def __repr__(self) -> str:
        return (
            f"InMemoryJournal(records={len(self._journal)}, "
            f"snapshot={self._snapshot is not None})"
        )


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _iter_frames(data: bytes) -> Iterator[bytes]:
    """Yield complete, checksummed payloads; stop at a truncated/corrupt tail."""

    offset = 0
    total = len(data)
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            return  # torn tail: the final append never finished
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt frame: everything after it is untrustworthy
        yield payload
        offset = end


class FileJournal(DurabilityBackend):
    """Append-only journal file + snapshot file for one host.

    Parameters
    ----------
    directory:
        Where the two files live (created if missing).
    name:
        Base name of the files (``<name>.journal`` / ``<name>.snapshot``);
        path separators are squashed so any host id is usable.
    """

    def __init__(self, directory: str | Path, name: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        safe = name.replace(os.sep, "_").replace("/", "_")
        self.journal_path = self.directory / f"{safe}.journal"
        self.snapshot_path = self.directory / f"{safe}.snapshot"
        self.appends = 0
        self.snapshots_written = 0
        self._record_count: int | None = None

    # -- journal ----------------------------------------------------------
    def append(self, payload: bytes) -> None:
        if self._record_count is None:
            self._record_count = len(self.payloads())
        with open(self.journal_path, "ab") as journal:
            journal.write(_frame(payload))
            journal.flush()
            os.fsync(journal.fileno())
        self._record_count += 1
        self.appends += 1

    def payloads(self) -> list[bytes]:
        try:
            data = self.journal_path.read_bytes()
        except FileNotFoundError:
            return []
        return list(_iter_frames(data))

    @property
    def journal_length(self) -> int:
        if self._record_count is None:
            self._record_count = len(self.payloads())
        return self._record_count

    # -- snapshot ---------------------------------------------------------
    def write_snapshot(self, blob: bytes) -> None:
        # Install the snapshot first (atomic rename), truncate the journal
        # second: a crash between the two steps leaves snapshot + stale
        # journal, whose records are idempotent re-applications of state the
        # snapshot already holds — replay stays correct either way.
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.snapshot_path.name, dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as tmp:
                tmp.write(_frame(blob))
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_name, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with open(self.journal_path, "wb") as journal:
            journal.flush()
            os.fsync(journal.fileno())
        self._record_count = 0
        self.snapshots_written += 1

    def load_snapshot(self) -> bytes | None:
        try:
            data = self.snapshot_path.read_bytes()
        except FileNotFoundError:
            return None
        for payload in _iter_frames(data):
            return payload  # exactly one frame per snapshot file
        return None  # torn or corrupt snapshot: treat as absent

    def __repr__(self) -> str:
        return f"FileJournal({str(self.journal_path)!r})"


BackendFactory = Callable[[str], DurabilityBackend]


def make_backend(
    spec: "str | bool | BackendFactory | None",
    host_id: str,
    directory: str | Path | None = None,
) -> DurabilityBackend | None:
    """Resolve a ``durability=`` flag value into a backend (or ``None``).

    ``None``/``False`` — durability off.  ``True`` or ``"memory"`` — an
    :class:`InMemoryJournal` (simulated flash).  ``"file"`` — a
    :class:`FileJournal` under ``directory``.  A callable is treated as a
    factory ``host_id -> backend`` for custom backends.
    """

    if spec is None or spec is False:
        return None
    if callable(spec):
        return spec(host_id)
    if spec is True or spec == "memory":
        return InMemoryJournal()
    if spec == "file":
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-durability-")
        return FileJournal(directory, host_id)
    raise ValueError(
        f"unknown durability spec {spec!r}: expected None, 'memory', 'file', "
        "or a factory callable"
    )
