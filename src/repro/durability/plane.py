"""The write-ahead plane: typed records, replayable state, compaction.

:class:`HostDurability` is the facade the state-owning managers talk to.
Each hook appends one typed record to the backend's journal; records are
pickled tuples, opaque to the backend.  The facade also drives *compaction*:
once the journal tail grows past ``snapshot_every`` records, the whole
snapshot + journal is folded into a fresh :class:`DurableHostState` snapshot
and the journal truncated — a superseded record (an input delivery for an
invocation that later completed, a commitment that was released) never
survives to the durable tail.

:func:`rebuild_state` is the read side: load the snapshot, apply the journal
tail record by record, and hand back the :class:`DurableHostState` a
restarted host resumes from.  Replay is idempotent and ignores unknown
record kinds, so journals written by a newer incarnation of the code still
restore everything an older reader understands.
"""

from __future__ import annotations

import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from .backend import DurabilityBackend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.fragments import WorkflowFragment
    from ..core.specification import Specification
    from ..scheduling.commitments import Commitment


# -- replayable state ---------------------------------------------------------


@dataclass
class InvocationState:
    """Durable view of one pending service invocation on a participant."""

    commitment: "Commitment"
    inputs: dict[str, object] = field(default_factory=dict)
    fired: bool = False
    completed: bool = False
    failed: bool = False

    @property
    def finished(self) -> bool:
        return self.completed or self.failed


@dataclass
class WorkspaceState:
    """Durable view of one initiator-side workflow workspace."""

    workflow_id: str
    specification: "Specification"
    participants: frozenset[str]
    excluded_tasks: frozenset[str] = frozenset()
    repair_of: str | None = None
    repair_attempt: int = 0
    phase: str = "created"
    failure_reason: str = ""
    expected_tasks: tuple[str, ...] = ()
    completed_tasks: set[str] = field(default_factory=set)
    allocation: dict[str, str] = field(default_factory=dict)
    repaired_by: str | None = None
    #: Remotes whose discovery response arrived before the crash, and the
    #: fragments those responses carried.  Both are cleared once the
    #: workspace leaves its construction phases (executing/terminal) so
    #: snapshots stay lean — they only matter for mid-construction resume.
    responded: set[str] = field(default_factory=set)
    discovered: list = field(default_factory=list)


@dataclass
class DurableHostState:
    """Everything a restarted host rebuilds from snapshot + journal.

    ``fragments`` and ``commitments`` preserve journal (= ingestion /
    acceptance) order; ``epochs`` records every fragment-database epoch an
    incarnation of this host ever started, so tests can assert epoch
    monotonicity across crash/restart cycles straight from the journal.
    """

    fragments: dict[str, "WorkflowFragment"] = field(default_factory=dict)
    epochs: list[int] = field(default_factory=list)
    commitments: dict[str, "Commitment"] = field(default_factory=dict)
    invocations: dict[tuple[str, str], InvocationState] = field(default_factory=dict)
    workspaces: dict[str, WorkspaceState] = field(default_factory=dict)
    #: Produced output values keyed ``(workflow_id, label)`` — the durable
    #: shadow of the execution engine's publication cache, restored so a
    #: resumed producer can answer ``LabelReplayRequest``s.
    published: dict[tuple[str, str], object] = field(default_factory=dict)

    def apply(self, record: tuple) -> None:
        """Fold one journal record into the state (idempotent)."""

        kind = record[0]
        if kind == "epoch":
            self.epochs.append(record[1])
        elif kind == "frag-add":
            fragment = record[1]
            # First write wins, matching FragmentIndex.add's dedup by id.
            self.fragments.setdefault(fragment.fragment_id, fragment)
        elif kind == "frag-del":
            self.fragments.pop(record[1], None)
        elif kind == "commit-add":
            commitment = record[1]
            self.commitments.setdefault(commitment.commitment_id, commitment)
        elif kind == "commit-del":
            self.commitments.pop(record[1], None)
        elif kind == "sched-clear":
            self.commitments.clear()
        elif kind == "inv-watch":
            commitment = record[1]
            key = (commitment.workflow_id, commitment.task.name)
            self.invocations.setdefault(key, InvocationState(commitment))
        elif kind == "inv-input":
            _, workflow_id, task_name, label, value = record
            invocation = self.invocations.get((workflow_id, task_name))
            if invocation is not None:
                invocation.inputs[label] = value
        elif kind == "inv-fired":
            invocation = self.invocations.get((record[1], record[2]))
            if invocation is not None:
                invocation.fired = True
        elif kind == "inv-done":
            invocation = self.invocations.get((record[1], record[2]))
            if invocation is not None:
                invocation.completed = True
        elif kind == "inv-fail":
            invocation = self.invocations.get((record[1], record[2]))
            if invocation is not None:
                invocation.failed = True
        elif kind == "ws-open":
            _, workflow_id, specification, participants, excluded, repair_of, attempt = record
            self.workspaces.setdefault(
                workflow_id,
                WorkspaceState(
                    workflow_id=workflow_id,
                    specification=specification,
                    participants=frozenset(participants),
                    excluded_tasks=frozenset(excluded),
                    repair_of=repair_of,
                    repair_attempt=attempt,
                ),
            )
        elif kind == "ws-phase":
            workspace = self.workspaces.get(record[1])
            if workspace is not None:
                workspace.phase = record[2]
                workspace.failure_reason = record[3]
                if record[2] in ("executing", "completed", "failed"):
                    # Construction is over: discovery bookkeeping can only
                    # bloat future snapshots, never inform a resume.
                    workspace.responded.clear()
                    workspace.discovered.clear()
        elif kind == "ws-frag":
            workspace = self.workspaces.get(record[1])
            if workspace is not None and record[2] not in workspace.responded:
                workspace.responded.add(record[2])
                workspace.discovered.extend(record[3])
        elif kind == "auction-done":
            workspace = self.workspaces.get(record[1])
            if workspace is not None and not workspace.allocation:
                workspace.allocation = dict(record[2])
        elif kind == "award-update":
            workspace = self.workspaces.get(record[1])
            if workspace is not None:
                workspace.allocation = dict(record[2])
        elif kind == "ws-award":
            workspace = self.workspaces.get(record[1])
            if workspace is not None:
                workspace.allocation = dict(record[2])
                workspace.expected_tasks = tuple(record[3])
        elif kind == "ws-task":
            workspace = self.workspaces.get(record[1])
            if workspace is not None:
                workspace.completed_tasks.add(record[2])
        elif kind == "ws-repair":
            workspace = self.workspaces.get(record[1])
            if workspace is not None:
                workspace.repaired_by = record[2]
        elif kind == "pub":
            # Last write wins: a repaired re-execution may republish a
            # label, and consumers replaying later must see that value.
            self.published[(record[1], record[2])] = record[3]
        # Unknown kinds are ignored: forward compatibility with journals
        # written by newer code.


def _loads(payload: bytes) -> tuple | None:
    try:
        record = pickle.loads(payload)
    except Exception:
        return None  # unreadable record: skip, keep replaying
    return record if isinstance(record, tuple) and record else None


def rebuild_state(backend: DurabilityBackend) -> DurableHostState:
    """Replay snapshot + journal tail into a :class:`DurableHostState`."""

    state: DurableHostState | None = None
    blob = backend.load_snapshot()
    if blob is not None:
        try:
            loaded = pickle.loads(blob)
        except Exception:
            loaded = None
        if isinstance(loaded, DurableHostState):
            state = loaded
    if state is None:
        state = DurableHostState()
    for payload in backend.payloads():
        record = _loads(payload)
        if record is not None:
            state.apply(record)
    return state


# -- the write-ahead facade ---------------------------------------------------


class HostDurability:
    """Typed write-ahead hooks for one host incarnation.

    One facade is created per host *incarnation* and wraps the community-
    owned backend that survives crashes.  Appends are suspended while a
    restarted host mechanically re-applies recovered state (the journal
    already holds those records); everything the host does afterwards is
    journaled normally.

    Parameters
    ----------
    backend:
        Where the records go.
    snapshot_every:
        Journal-tail length that triggers compaction (snapshot + truncate).
    journal_outputs:
        When ``False``, :meth:`label_published` is a no-op: produced values
        never reach the journal, restoring the tier-1 (PR-8) behaviour
        where a crashed producer cannot answer replay requests.  Kept as a
        toggle so benchmarks can measure exactly what output journaling
        buys.
    """

    def __init__(
        self,
        backend: DurabilityBackend,
        snapshot_every: int = 512,
        journal_outputs: bool = True,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        self.backend = backend
        self.snapshot_every = snapshot_every
        self.journal_outputs = journal_outputs
        self._suspended = 0
        self.records_written = 0
        self.snapshots_written = 0

    # -- plumbing ---------------------------------------------------------
    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No-op appends inside the block (used while replaying recovery)."""

        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def _append(self, record: tuple) -> None:
        if self._suspended:
            return
        self.backend.append(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        self.records_written += 1
        if self.backend.journal_length >= self.snapshot_every:
            self.compact()

    def compact(self) -> None:
        """Fold snapshot + journal into a fresh snapshot; truncate the tail.

        Superseded records — inputs of settled invocations, released
        commitments, phase transitions a later transition replaced — are
        dropped here and never hit the durable tail again.
        """

        state = rebuild_state(self.backend)
        self.backend.write_snapshot(
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.snapshots_written += 1

    def records(self) -> list[tuple]:
        """The decoded journal-tail records (testing/introspection aid)."""

        decoded = []
        for payload in self.backend.payloads():
            record = _loads(payload)
            if record is not None:
                decoded.append(record)
        return decoded

    def state(self) -> DurableHostState:
        """The current replayable state (snapshot + journal tail)."""

        return rebuild_state(self.backend)

    # -- fragment database hooks ------------------------------------------
    def epoch_started(self, epoch: int) -> None:
        self._append(("epoch", epoch))

    def fragment_added(self, fragment: "WorkflowFragment") -> None:
        self._append(("frag-add", fragment))

    def fragment_discarded(self, fragment_id: str) -> None:
        self._append(("frag-del", fragment_id))

    # -- schedule hooks ----------------------------------------------------
    def commitment_added(self, commitment: "Commitment") -> None:
        self._append(("commit-add", commitment))

    def commitment_released(self, commitment_id: str) -> None:
        self._append(("commit-del", commitment_id))

    def schedule_cleared(self) -> None:
        self._append(("sched-clear",))

    # -- invocation lifecycle hooks ---------------------------------------
    def invocation_scheduled(self, commitment: "Commitment") -> None:
        self._append(("inv-watch", commitment))

    def input_received(
        self, workflow_id: str, task_name: str, label: str, value: object
    ) -> None:
        self._append(("inv-input", workflow_id, task_name, label, value))

    def invocation_fired(self, workflow_id: str, task_name: str) -> None:
        self._append(("inv-fired", workflow_id, task_name))

    def invocation_completed(self, workflow_id: str, task_name: str) -> None:
        self._append(("inv-done", workflow_id, task_name))

    def invocation_failed(
        self, workflow_id: str, task_name: str, reason: str = ""
    ) -> None:
        self._append(("inv-fail", workflow_id, task_name, reason))

    def label_published(self, workflow_id: str, label: str, value: object) -> None:
        """Write-ahead one produced output value (gated by journal_outputs)."""

        if not self.journal_outputs:
            return
        self._append(("pub", workflow_id, label, value))

    # -- workspace hooks ---------------------------------------------------
    def workspace_opened(
        self,
        workflow_id: str,
        specification: "Specification",
        participants: frozenset[str],
        excluded_tasks: frozenset[str],
        repair_of: str | None,
        repair_attempt: int,
    ) -> None:
        self._append(
            (
                "ws-open",
                workflow_id,
                specification,
                frozenset(participants),
                frozenset(excluded_tasks),
                repair_of,
                repair_attempt,
            )
        )

    def workspace_phase(
        self, workflow_id: str, phase: str, failure_reason: str = ""
    ) -> None:
        self._append(("ws-phase", workflow_id, phase, failure_reason))

    def workspace_awarded(
        self,
        workflow_id: str,
        allocation: dict[str, str],
        expected_tasks: tuple[str, ...],
    ) -> None:
        self._append(("ws-award", workflow_id, dict(allocation), tuple(expected_tasks)))

    def workspace_task_completed(self, workflow_id: str, task_name: str) -> None:
        self._append(("ws-task", workflow_id, task_name))

    def workspace_repaired(self, workflow_id: str, repaired_by: str) -> None:
        self._append(("ws-repair", workflow_id, repaired_by))

    def discovery_response(
        self, workflow_id: str, sender: str, fragments: list
    ) -> None:
        """One remote's discovery response (fragments it contributed)."""

        self._append(("ws-frag", workflow_id, sender, list(fragments)))

    def auction_completed(
        self, workflow_id: str, allocation: dict[str, str], unallocated: tuple
    ) -> None:
        """The auction's outcome, journaled before awards go on the wire."""

        self._append(("auction-done", workflow_id, dict(allocation), tuple(unallocated)))

    def allocation_updated(self, workflow_id: str, allocation: dict[str, str]) -> None:
        """A post-award reassignment changed who runs what."""

        self._append(("award-update", workflow_id, dict(allocation)))

    def __repr__(self) -> str:
        return (
            f"HostDurability(records={self.records_written}, "
            f"snapshots={self.snapshots_written}, backend={self.backend!r})"
        )
