"""The durable state plane: per-host journals and snapshots.

Everything a host owns — its fragment database, schedule commitments,
pending service invocations, and the initiator-side workflow workspaces —
lives in process memory and dies with the process.  This package gives a
host a *durable* shadow of that state: every state transition is appended
to a per-host journal through a pluggable persistence backend, the journal
is periodically folded into a snapshot (superseded records never reach the
durable tail — compaction in the spirit of NWR's omittable writes), and a
restarted host replays snapshot + journal tail to resume mid-workflow
instead of forcing the full repair ladder.

The backend split follows RAFDA's argument for separating application
logic from distribution/persistence *policy*: the managers call typed
write-ahead hooks on :class:`~repro.durability.plane.HostDurability` and
never know whether those records land in memory (simulated flash) or in an
append-only file.
"""

from .backend import (
    SQLITE_SCHEMA_VERSION,
    DurabilityBackend,
    FileJournal,
    InMemoryJournal,
    SQLiteJournal,
    make_backend,
)
from .plane import (
    DurableHostState,
    HostDurability,
    InvocationState,
    WorkspaceState,
    rebuild_state,
)

__all__ = [
    "DurabilityBackend",
    "DurableHostState",
    "FileJournal",
    "HostDurability",
    "InMemoryJournal",
    "InvocationState",
    "SQLITE_SCHEMA_VERSION",
    "SQLiteJournal",
    "WorkspaceState",
    "make_backend",
    "rebuild_state",
]
