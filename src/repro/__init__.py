"""repro — an open workflow management system in Python.

Reproduction of "Achieving Coordination Through Dynamic Construction of
Open Workflows" (Thomas, Wilson, Roman, Gill; WUCSE-2009-14, 2009).

The top-level package re-exports the most commonly used names so that a
downstream user can write::

    from repro import Task, WorkflowFragment, Specification, construct_workflow

for pure in-memory construction, or::

    from repro import OpenWorkflowSystem

to stand up a full simulated community of hosts with discovery, auction
based allocation, and decentralized execution.
"""

from .core import (
    Color,
    ColoringSolver,
    ConstructionResult,
    KnowledgeSet,
    Label,
    MemoizedColoringSolver,
    OpenWorkflowError,
    Solver,
    Specification,
    Supergraph,
    Task,
    TaskMode,
    Workflow,
    WorkflowConstructor,
    WorkflowFragment,
    conjunctive,
    construct_incrementally,
    construct_workflow,
    disjunctive,
    is_feasible,
    make_solver,
    specification,
)
from .durability import DurabilityBackend, FileJournal, InMemoryJournal
from .execution import CallableService, ManualService, ServiceDescription
from .host import Community, Host, Workspace, WorkflowPhase
from .owms import OpenWorkflowSystem, SolveReport
from .scheduling import Commitment, ParticipantPreferences

__version__ = "1.0.0"

__all__ = [
    "CallableService",
    "Color",
    "ColoringSolver",
    "Commitment",
    "Community",
    "ConstructionResult",
    "DurabilityBackend",
    "FileJournal",
    "Host",
    "InMemoryJournal",
    "MemoizedColoringSolver",
    "Solver",
    "KnowledgeSet",
    "Label",
    "ManualService",
    "OpenWorkflowError",
    "OpenWorkflowSystem",
    "ParticipantPreferences",
    "ServiceDescription",
    "SolveReport",
    "Specification",
    "Supergraph",
    "Task",
    "TaskMode",
    "Workflow",
    "WorkflowConstructor",
    "WorkflowFragment",
    "WorkflowPhase",
    "Workspace",
    "conjunctive",
    "construct_incrementally",
    "construct_workflow",
    "disjunctive",
    "is_feasible",
    "make_solver",
    "specification",
    "__version__",
]
