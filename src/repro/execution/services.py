"""The Service Manager: the capabilities a host exposes.

A *service* is a concrete implementation of a task and may involve a
computation by the device, an activity performed by the user, or some
combination of the two (paper, Section 2.2).  The Service Manager maintains
the list of services exposed by a host, answers capability queries from
workflow managers, and provides a uniform invocation interface to the
execution manager — including the "parameter marshaling and any other
mechanics required to actually invoke a local service" (Section 4.2).

Three kinds of services are modelled:

* :class:`CallableService` — backed by a Python callable (the analogue of a
  computational web service);
* :class:`ManualService` — performed by the human user; in the paper the UI
  presents a form or a button, here completion is simulated after the
  declared duration (optionally via a supplied ``performer`` callback so
  tests can inspect or fail manual steps);
* a bare :class:`ServiceDescription` — capability advertisement only, with a
  default no-op behaviour, which is what the scalability evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..core.errors import ExecutionError, ServiceNotFoundError
from ..core.tasks import Task

ServiceCallable = Callable[[Task, Mapping[str, object]], Mapping[str, object]]


@dataclass(frozen=True)
class ServiceDescription:
    """Advertisement of one capability offered by a host.

    Parameters
    ----------
    service_type:
        The abstract capability name matched against
        :attr:`repro.core.tasks.Task.service_type` during allocation.
    name:
        Human readable name of the concrete implementation.
    duration:
        Expected execution time in seconds (used when the task itself does
        not declare a duration).
    specialization_weight:
        How specialised this service is; reserved for richer ranking
        policies (the default auction policy only counts services).
    description:
        Free-form documentation string.
    """

    service_type: str
    name: str = ""
    duration: float = 0.0
    specialization_weight: float = 1.0
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.service_type:
            raise ValueError("a service requires a service_type")
        if self.duration < 0:
            raise ValueError("service duration must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", self.service_type)

    def execute(self, task: Task, inputs: Mapping[str, object]) -> Mapping[str, object]:
        """Run the service.  The base description simply produces its outputs.

        Each output label is mapped to a small provenance record so
        downstream consumers (and tests) can see where a value came from.
        """

        return {
            label: {"produced_by": self.name, "task": task.name}
            for label in task.outputs
        }

    def __repr__(self) -> str:
        return f"ServiceDescription({self.service_type!r}, name={self.name!r})"


@dataclass(frozen=True, repr=False)
class CallableService(ServiceDescription):
    """A service backed by a Python callable.

    The callable receives the task and a mapping of input label to value and
    must return a mapping of output label to value.  Missing output labels
    are filled with provenance records; extra keys are ignored.
    """

    callable: ServiceCallable | None = None

    def execute(self, task: Task, inputs: Mapping[str, object]) -> Mapping[str, object]:
        if self.callable is None:
            return super().execute(task, inputs)
        produced = dict(self.callable(task, inputs) or {})
        outputs: dict[str, object] = {}
        for label in task.outputs:
            if label in produced:
                outputs[label] = produced[label]
            else:
                outputs[label] = {"produced_by": self.name, "task": task.name}
        return outputs

    def __repr__(self) -> str:
        return f"CallableService({self.service_type!r}, name={self.name!r})"


@dataclass(frozen=True, repr=False)
class ManualService(ServiceDescription):
    """A service performed by the human user.

    ``performer`` models the user finishing the form/button interaction; it
    may return a mapping of output values or raise to simulate the user
    failing or refusing the task.
    """

    performer: ServiceCallable | None = None
    requires_confirmation: bool = True

    def execute(self, task: Task, inputs: Mapping[str, object]) -> Mapping[str, object]:
        if self.performer is not None:
            produced = dict(self.performer(task, inputs) or {})
        else:
            produced = {}
        outputs: dict[str, object] = {}
        for label in task.outputs:
            outputs[label] = produced.get(
                label, {"produced_by": self.name, "task": task.name, "manual": True}
            )
        return outputs

    def __repr__(self) -> str:
        return f"ManualService({self.service_type!r}, name={self.name!r})"


class ServiceManager:
    """Registry and invocation front-end for one host's services."""

    def __init__(self, host_id: str, services: Iterable[ServiceDescription] = ()) -> None:
        self.host_id = host_id
        self._services: dict[str, ServiceDescription] = {}
        self.invocations = 0
        for service in services:
            self.register(service)

    # -- registry -----------------------------------------------------------
    def register(self, service: ServiceDescription) -> None:
        """Register (or replace) a service offered by this host."""

        self._services[service.service_type] = service

    def unregister(self, service_type: str) -> bool:
        return self._services.pop(service_type, None) is not None

    @property
    def service_types(self) -> frozenset[str]:
        """All capability names this host advertises."""

        return frozenset(self._services)

    @property
    def service_count(self) -> int:
        """How many services the host offers — the auction's specialization metric."""

        return len(self._services)

    def provides(self, service_type: str | None) -> bool:
        """True when the host can perform tasks requiring ``service_type``."""

        return service_type is not None and service_type in self._services

    def get(self, service_type: str) -> ServiceDescription | None:
        return self._services.get(service_type)

    def matching(self, service_types: Iterable[str]) -> frozenset[str]:
        """The subset of ``service_types`` this host offers (capability query answer)."""

        return frozenset(s for s in service_types if s in self._services)

    def expected_duration(self, task: Task) -> float:
        """Execution time estimate for ``task``: the task's own, else the service's."""

        if task.duration > 0:
            return task.duration
        service = self._services.get(task.service_type or "")
        return service.duration if service is not None else 0.0

    # -- invocation ------------------------------------------------------------
    def invoke(self, task: Task, inputs: Mapping[str, object]) -> Mapping[str, object]:
        """Execute the service implementing ``task`` with the gathered inputs."""

        service = self._services.get(task.service_type or "")
        if service is None:
            raise ServiceNotFoundError(
                f"host {self.host_id!r} offers no service of type "
                f"{task.service_type!r} for task {task.name!r}"
            )
        self.invocations += 1
        try:
            return service.execute(task, inputs)
        except ServiceNotFoundError:
            raise
        except Exception as exc:  # noqa: BLE001 - service code is user supplied
            raise ExecutionError(
                f"service {service.name!r} failed while executing task "
                f"{task.name!r}: {exc}"
            ) from exc

    def __repr__(self) -> str:
        return f"ServiceManager(host={self.host_id!r}, services={sorted(self._services)})"
