"""Execution substrate: services and the decentralized execution engine."""

from .engine import ExecutionManager, PendingInvocation
from .services import (
    CallableService,
    ManualService,
    ServiceDescription,
    ServiceManager,
)

__all__ = [
    "CallableService",
    "ExecutionManager",
    "ManualService",
    "PendingInvocation",
    "ServiceDescription",
    "ServiceManager",
]
