"""The Execution Manager: decentralized, condition-driven service invocation.

After allocation, each participant is on its own: "the execution phase of an
open workflow proceeds in a fully decentralized, distributed manner" (paper,
Section 3.2).  To meet a commitment the participant must (1) acquire the
required inputs from the executors of the preceding tasks, (2) be at the
required location, and (3) execute the service at the required time; once
executed, it communicates the outputs to any participants that require them.

:class:`ExecutionManager` implements exactly that loop for one host.  It
"monitors the input message and time conditions required for each scheduled
service invocation ... once the necessary conditions are met, it triggers
service execution, and publishes any output messages" (Section 4.2).
Location condition (2) is represented by the travel time already blocked out
in the commitment: the manager will not fire before ``commitment.start``,
by which time the travel has taken place.

Scaling architecture
--------------------
Trigger dispatch is *indexed*: an inverted index keyed by
``(workflow_id, label)`` maps every awaited input label to the pending
invocations that consume it, maintained eagerly on :meth:`watch` and on
completion (a bucket whose last watcher leaves is deleted, so the index
never outgrows the pending set — the same index-key rule as
:class:`~repro.discovery.fragment_index.FragmentIndex`).  Delivering a
label is O(consumers of that label), not O(pending invocations).

Output publication and progress reporting are *batched* by default
(``batch_execution=False`` restores the per-label protocol): one
:class:`~repro.net.messages.LabelBatch` per (firing, destination host)
instead of one :class:`~repro.net.messages.LabelDataMessage` per
label x destination, and one
:class:`~repro.net.messages.WorkflowProgressReport` to the initiator per
completion *burst* — a completion is buffered while another invocation of
the same workflow is still executing on this host (that invocation's own
completion is already scheduled and will flush the report), so a pipeline
of k tasks run back-to-back on one host reports once instead of k times.
Failures always flush immediately (carrying any buffered completions) so
workflow repair is never delayed.  Every batch entry is recorded through
the same internals as its per-label counterpart, so commitment outcomes
and repair behaviour are structurally identical across the two protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.errors import ExecutionError
from ..net.messages import (
    LabelBatch,
    LabelDataMessage,
    LabelEntry,
    LabelReplayRequest,
    Message,
    TaskCompleted,
    TaskCompletionRecord,
    TaskFailed,
    TaskFailureRecord,
    WorkflowProgressReport,
)
from ..scheduling.commitments import Commitment, CommitmentOutcome
from ..sim.events import EventHandle, EventScheduler
from .services import ServiceManager

SendFunction = Callable[[Message], None]

_PendingKey = tuple[str, str]


@dataclass
class PendingInvocation:
    """Book-keeping for one commitment awaiting its trigger conditions."""

    commitment: Commitment
    received_inputs: dict[str, object] = field(default_factory=dict)
    started: bool = False
    completed: bool = False
    #: Robust mode only: the timer that abandons the invocation when its
    #: inputs never arrive (cancelled the moment execution starts).
    expiry_event: EventHandle | None = None

    @property
    def task_name(self) -> str:
        return self.commitment.task.name

    def inputs_satisfied(self) -> bool:
        """Are the data prerequisites met?

        Trigger labels are considered available from the outset.  A
        conjunctive task needs every remaining input; a disjunctive task
        needs at least one of its inputs (a trigger label counts).
        """

        task = self.commitment.task
        available = set(self.received_inputs) | set(self.commitment.trigger_labels)
        needed = task.inputs
        if not needed:
            return True
        if task.is_conjunctive:
            return needed <= available
        return bool(needed & available)

    def missing_inputs(self) -> frozenset[str]:
        available = set(self.received_inputs) | set(self.commitment.trigger_labels)
        return frozenset(self.commitment.task.inputs - available)


class ExecutionManager:
    """Runs the commitments of one host.

    Parameters
    ----------
    host_id:
        The owning host.
    scheduler:
        The shared event scheduler (provides time and timers).
    services:
        The host's service manager, used to actually invoke services.
    send:
        Callback used to hand outgoing messages to the communications layer.
    batch_execution:
        When true (the default) outputs are published as one
        :class:`~repro.net.messages.LabelBatch` per destination host and
        progress is reported in combined
        :class:`~repro.net.messages.WorkflowProgressReport` messages;
        ``False`` restores the original per-label / per-task protocol.
    """

    def __init__(
        self,
        host_id: str,
        scheduler: EventScheduler,
        services: ServiceManager,
        send: SendFunction,
        batch_execution: bool = True,
        robust: bool = False,
        input_timeout: float = 60.0,
        schedule=None,
        durability=None,
    ) -> None:
        self.host_id = host_id
        self.scheduler = scheduler
        self.services = services
        self._send = send
        self.batch_execution = batch_execution
        #: Fault hardening (``fault_injection``): an invocation whose inputs
        #: have not all arrived ``input_timeout`` seconds after its
        #: scheduled start is *abandoned* — its commitment is released from
        #: ``schedule`` (the host's :class:`~repro.scheduling.schedule.ScheduleManager`,
        #: when given) and the initiator is told via a transient failure, so
        #: a producer's death upstream turns into workflow repair instead of
        #: an invocation pending forever.  Off by default: no timer survives
        #: long enough to change a clean run.
        self.robust = robust
        self.input_timeout = input_timeout
        self.schedule = schedule
        self.durability = durability
        self.invocations_abandoned = 0
        #: Invocations re-armed from the durable journal after a restart
        #: (instead of being lost and re-auctioned via repair).
        self.invocations_resumed = 0
        #: Published values restored into the cache from the journal.
        self.publications_restored = 0
        #: Labels this host answered replay requests for (from the cache,
        #: restored or live).
        self.labels_replayed = 0
        self._pending: dict[_PendingKey, PendingInvocation] = {}
        #: Inverted trigger index: (workflow_id, label) -> the pending
        #: invocations awaiting that label, in watch order.  Buckets are
        #: ordered dicts used as sets so delivery order matches the old
        #: linear scan exactly; an emptied bucket is deleted.
        self._watchers: dict[tuple[str, str], dict[_PendingKey, None]] = {}
        #: Per-workflow count of invocations currently executing (started,
        #: not yet completed); used to decide when a completion burst ends.
        self._running: dict[str, int] = {}
        #: Publication cache: every (workflow_id, label) this host produced,
        #: with its value.  Serves :class:`~repro.net.messages.LabelReplayRequest`
        #: from restarted consumers whose copy died with the crashed
        #: process.  With output journaling on, the cache itself is restored
        #: after this host's own crash (:meth:`restore_publications`); with
        #: it off, a crashed producer cannot replay and the requester falls
        #: back to repair.
        self._published: dict[tuple[str, str], object] = {}
        #: Completions not yet reported to the initiator, per workflow.
        self._unsent_completions: dict[str, list[TaskCompletionRecord]] = {}
        self.outcomes: list[CommitmentOutcome] = []
        #: Label deliveries that matched no pending invocation (late,
        #: duplicate, or mis-routed data); ``_unreported_unexpected`` holds
        #: the per-workflow count not yet piggybacked on a progress report
        #: (popped on flush, so it never outlives the stray traffic).
        self.unexpected_labels = 0
        self._unreported_unexpected: dict[str, int] = {}

    # -- commitment intake ---------------------------------------------------
    def watch(self, commitment: Commitment) -> PendingInvocation:
        """Start monitoring the conditions of a newly accepted commitment."""

        key = (commitment.workflow_id, commitment.task.name)
        if key in self._pending:
            return self._pending[key]
        pending = PendingInvocation(commitment)
        self._pending[key] = pending
        if self.durability is not None:
            self.durability.invocation_scheduled(commitment)
        for label in commitment.task.inputs:
            self._watchers.setdefault((commitment.workflow_id, label), {})[key] = None
        # Time condition: wake up when the scheduled start arrives.  Input
        # messages arriving earlier are recorded but do not trigger execution
        # before the committed time.
        delay = max(0.0, commitment.start - self.scheduler.clock.now())
        self.scheduler.schedule_in(
            delay,
            lambda: self._maybe_execute(key),
            description=f"start-window {commitment.task.name}",
        )
        if self.robust:
            pending.expiry_event = self.scheduler.schedule_in(
                delay + self.input_timeout,
                lambda: self._expire(key),
                description=f"input-timeout {commitment.task.name}",
            )
        return pending

    def _unwatch(self, key: _PendingKey, commitment: Commitment) -> None:
        """Remove a finished invocation from the trigger index."""

        for label in commitment.task.inputs:
            index_key = (commitment.workflow_id, label)
            bucket = self._watchers.get(index_key)
            if bucket is None:
                continue
            bucket.pop(key, None)
            if not bucket:
                del self._watchers[index_key]

    def restore_invocations(self, records) -> None:
        """Re-arm recovered in-flight invocations after a restart.

        ``records`` are :class:`~repro.durability.plane.InvocationState`
        values replayed from the journal.  Settled invocations are skipped
        (their completion/failure already reached the initiator or will be
        repaired there); the rest are re-watched with their already-received
        inputs restored, so only the labels lost during the outage still
        have to arrive — or time out into the repair ladder.  The journal
        already holds these records, so appends are suspended for the
        mechanical part.
        """

        resumed: list[PendingInvocation] = []
        for record in records:
            if record.finished:
                continue
            if self.durability is not None:
                with self.durability.suspended():
                    pending = self.watch(record.commitment)
                    pending.received_inputs.update(record.inputs)
            else:
                pending = self.watch(record.commitment)
                pending.received_inputs.update(record.inputs)
            self.invocations_resumed += 1
            resumed.append(pending)
            # The start window may already have passed during the outage;
            # the watch() timer fires immediately in that case and the
            # restored inputs count toward the trigger conditions.
        for pending in resumed:
            self._request_missing_inputs(pending)

    def restore_publications(self, published: Mapping[tuple[str, str], object]) -> None:
        """Refill the publication cache from the journal after a restart.

        With output journaling on, every value this host ever published is
        in the durable state; restoring it lets the resumed incarnation
        answer :class:`~repro.net.messages.LabelReplayRequest`s for labels
        produced *before* the crash — the producer-side half of input
        replay.  Without this, a consumer whose producer crashed waits out
        its input timeout and falls into the repair ladder.
        """

        for key, value in published.items():
            self._published[key] = value
            self.publications_restored += 1

    def _request_missing_inputs(self, pending: PendingInvocation) -> None:
        """Ask producers to re-send inputs lost while this host was down.

        A label delivered during the outage died with the crashed process
        and will never arrive again on its own; the commitment records who
        was supposed to deliver it, so the resumed invocation asks each
        producer to replay from its publication cache rather than sitting
        out the input window and falling into the repair ladder.
        """

        if pending.started or pending.completed or pending.inputs_satisfied():
            return
        commitment = pending.commitment
        by_source: dict[str, list[str]] = {}
        for label in sorted(pending.missing_inputs()):
            source = commitment.input_sources.get(label)
            if source and source != self.host_id:
                by_source.setdefault(source, []).append(label)
        for source, labels in by_source.items():
            self._send(
                LabelReplayRequest(
                    sender=self.host_id,
                    recipient=source,
                    workflow_id=commitment.workflow_id,
                    labels=tuple(labels),
                )
            )

    def handle_replay_request(self, message: LabelReplayRequest) -> None:
        """Re-send previously published labels to a restarted consumer.

        Answers come from the publication cache (live, or restored from the
        journal after this host's own restart) through the ordinary
        delivery path, so the requester's execution manager treats a
        replayed label exactly like a first delivery.  Labels this host
        never produced (or lost, with output journaling off, to its own
        crash) are silently skipped — the requester's input timeout still
        backstops those.
        """

        now = self.scheduler.clock.now()
        for label in message.labels:
            key = (message.workflow_id, label)
            if key not in self._published:
                continue
            self.labels_replayed += 1
            self._send(
                LabelDataMessage(
                    sender=self.host_id,
                    recipient=message.sender,
                    workflow_id=message.workflow_id,
                    label=label,
                    value=self._published[key],
                    produced_by=self.host_id,
                    produced_at=now,
                )
            )

    def pending_invocations(self) -> list[PendingInvocation]:
        return list(self._pending.values())

    def pending_for_workflow(self, workflow_id: str) -> list[PendingInvocation]:
        return [
            inv for (wid, _), inv in self._pending.items() if wid == workflow_id
        ]

    # -- input arrival ---------------------------------------------------------
    def deliver_label(self, message: LabelDataMessage) -> None:
        """Record an input label delivered by another participant."""

        self._deliver(message.workflow_id, message.label, message.value)

    def handle_label_batch(self, batch: LabelBatch) -> None:
        """Record every label of a batched delivery, in entry order."""

        for entry in batch.entries:
            self._deliver(batch.workflow_id, entry.label, entry.value)

    def _deliver(self, workflow_id: str, label: str, value: object) -> None:
        """Route one delivered label to the invocations awaiting it.

        One O(1) index lookup finds exactly the pending invocations whose
        task consumes the label; the old code scanned every pending
        invocation of the host per message.
        """

        bucket = self._watchers.get((workflow_id, label))
        if not bucket:
            # Late or unexpected data; harmless, but worth counting.  Only
            # the batched protocol reports these to the initiator, so only
            # it accrues the per-workflow delta (which the flush pops).
            self.unexpected_labels += 1
            if self.batch_execution:
                self._unreported_unexpected[workflow_id] = (
                    self._unreported_unexpected.get(workflow_id, 0) + 1
                )
            return
        for key in list(bucket):
            pending = self._pending.get(key)
            if pending is None:
                continue
            pending.received_inputs[label] = value
            if self.durability is not None:
                self.durability.input_received(workflow_id, key[1], label, value)
            self._maybe_execute(key)

    # -- condition check and execution ----------------------------------------------
    def _maybe_execute(self, key: _PendingKey) -> None:
        pending = self._pending.get(key)
        if pending is None or pending.started or pending.completed:
            return
        commitment = pending.commitment
        now = self.scheduler.clock.now()
        if now < commitment.start:
            return
        if not pending.inputs_satisfied():
            return
        pending.started = True
        if self.durability is not None:
            self.durability.invocation_fired(commitment.workflow_id, key[1])
        if pending.expiry_event is not None:
            # The conditions were met in time; the abandonment timer is moot.
            pending.expiry_event.cancel()
            pending.expiry_event = None
        self._running[commitment.workflow_id] = (
            self._running.get(commitment.workflow_id, 0) + 1
        )
        duration = max(
            commitment.task.duration, self.services.expected_duration(commitment.task)
        )
        self.scheduler.schedule_in(
            duration,
            lambda: self._complete(key),
            description=f"execute {commitment.task.name}",
        )

    def _expire(self, key: _PendingKey) -> None:
        """Abandon an invocation whose inputs never arrived (robust mode).

        The producer upstream is dead or partitioned away: release the
        commitment's schedule slot, forget the invocation, and report a
        *transient* failure so the initiator repairs by re-auctioning the
        task rather than excluding it — the task is fine, its data never
        came.
        """

        pending = self._pending.get(key)
        if pending is None or pending.started or pending.completed:
            return
        commitment = pending.commitment
        pending.completed = True
        pending.expiry_event = None
        self.invocations_abandoned += 1
        missing = ", ".join(sorted(pending.missing_inputs()))
        reason = (
            f"abandoned: inputs [{missing}] never arrived within "
            f"{self.input_timeout:g}s of the scheduled start"
        )
        self.outcomes.append(
            CommitmentOutcome(
                commitment,
                completed_at=self.scheduler.clock.now(),
                succeeded=False,
                failure_reason=reason,
            )
        )
        if self.durability is not None:
            self.durability.invocation_failed(commitment.workflow_id, key[1], reason)
        if self.schedule is not None:
            self.schedule.remove_commitment(commitment.commitment_id)
        self._pending.pop(key, None)
        self._unwatch(key, commitment)
        self._notify_failure(commitment, reason, transient=True)

    def _complete(self, key: _PendingKey) -> None:
        pending = self._pending.get(key)
        if pending is None or pending.completed:
            return
        commitment = pending.commitment
        workflow_id = commitment.workflow_id
        remaining = self._running.get(workflow_id, 1) - 1
        if remaining:
            self._running[workflow_id] = remaining
        else:
            self._running.pop(workflow_id, None)
        inputs = dict(pending.received_inputs)
        for trigger in commitment.trigger_labels:
            inputs.setdefault(trigger, {"trigger": True})
        try:
            outputs = self.services.invoke(commitment.task, inputs)
        except ExecutionError as exc:
            pending.completed = True
            self.outcomes.append(
                CommitmentOutcome(
                    commitment,
                    completed_at=self.scheduler.clock.now(),
                    succeeded=False,
                    failure_reason=str(exc),
                )
            )
            if self.durability is not None:
                self.durability.invocation_failed(workflow_id, key[1], str(exc))
            self._notify_failure(commitment, str(exc))
            self._pending.pop(key, None)
            self._unwatch(key, commitment)
            return

        pending.completed = True
        if self.durability is not None:
            self.durability.invocation_completed(workflow_id, key[1])
        sent_labels = self._publish_outputs(commitment, outputs)
        self.outcomes.append(
            CommitmentOutcome(
                commitment,
                completed_at=self.scheduler.clock.now(),
                succeeded=True,
                outputs_sent=sent_labels,
            )
        )
        self._notify_initiator(commitment, outputs)
        self._pending.pop(key, None)
        self._unwatch(key, commitment)

    # -- output publication --------------------------------------------------------
    def _publish_outputs(
        self, commitment: Commitment, outputs: Mapping[str, object]
    ) -> frozenset[str]:
        if self.batch_execution:
            return self._publish_outputs_batched(commitment, outputs)
        sent: set[str] = set()
        now = self.scheduler.clock.now()
        for label, destinations in commitment.output_destinations.items():
            value = outputs.get(label)
            self._published[(commitment.workflow_id, label)] = value
            if self.durability is not None:
                # Write-ahead: the value is durable before any consumer sees
                # it, so a crash between journal and send loses nothing a
                # replay request can't recover.
                self.durability.label_published(commitment.workflow_id, label, value)
            for destination in destinations:
                message = LabelDataMessage(
                    sender=self.host_id,
                    recipient=destination,
                    workflow_id=commitment.workflow_id,
                    label=label,
                    value=value,
                    produced_by=self.host_id,
                    produced_at=now,
                )
                if destination == self.host_id:
                    # Local delivery still goes through the same code path the
                    # remote case uses, but without crossing the network.
                    self.deliver_label(message)
                else:
                    self._send(message)
                sent.add(label)
        return frozenset(sent)

    def _publish_outputs_batched(
        self, commitment: Commitment, outputs: Mapping[str, object]
    ) -> frozenset[str]:
        """One :class:`LabelBatch` per destination host, labels in the same
        order the per-label protocol would have sent them."""

        sent: set[str] = set()
        batches: dict[str, list[LabelEntry]] = {}
        for label, destinations in commitment.output_destinations.items():
            value = outputs.get(label)
            self._published[(commitment.workflow_id, label)] = value
            if self.durability is not None:
                # Write-ahead, same as the per-label path: durable before sent.
                self.durability.label_published(commitment.workflow_id, label, value)
            for destination in destinations:
                batches.setdefault(destination, []).append(LabelEntry(label, value))
                sent.add(label)
        now = self.scheduler.clock.now()
        for destination, entries in batches.items():
            message = LabelBatch(
                sender=self.host_id,
                recipient=destination,
                workflow_id=commitment.workflow_id,
                produced_by=self.host_id,
                produced_at=now,
                entries=tuple(entries),
            )
            if destination == self.host_id:
                # Local delivery: same internals, no network crossing.
                self.handle_label_batch(message)
            else:
                self._send(message)
        return frozenset(sent)

    # -- progress reporting --------------------------------------------------------
    def _notify_failure(
        self, commitment: Commitment, reason: str, transient: bool = False
    ) -> None:
        """Report an execution failure back to the initiator (repair trigger)."""

        if not commitment.initiator:
            return
        now = self.scheduler.clock.now()
        if self.batch_execution:
            # Failures flush immediately, carrying any buffered completions,
            # so the initiator can start workflow repair without delay.
            self._flush_report(
                commitment,
                failure=TaskFailureRecord(
                    task_name=commitment.task.name,
                    failed_at=now,
                    reason=reason,
                    transient=transient,
                ),
            )
            return
        self._send(
            TaskFailed(
                sender=self.host_id,
                recipient=commitment.initiator,
                workflow_id=commitment.workflow_id,
                task_name=commitment.task.name,
                failed_at=now,
                reason=reason,
                transient=transient,
            )
        )

    def _notify_initiator(
        self, commitment: Commitment, outputs: Mapping[str, object]
    ) -> None:
        if not commitment.initiator:
            return
        now = self.scheduler.clock.now()
        if not self.batch_execution:
            self._send(
                TaskCompleted(
                    sender=self.host_id,
                    recipient=commitment.initiator,
                    workflow_id=commitment.workflow_id,
                    task_name=commitment.task.name,
                    completed_at=now,
                    outputs=frozenset(outputs),
                )
            )
            return
        self._unsent_completions.setdefault(commitment.workflow_id, []).append(
            TaskCompletionRecord(
                task_name=commitment.task.name,
                completed_at=now,
                outputs=frozenset(outputs),
            )
        )
        if self._running.get(commitment.workflow_id):
            # Another invocation of this workflow is executing right now; its
            # completion is already scheduled and will flush the report, so
            # this completion rides along instead of paying its own message.
            return
        self._flush_report(commitment)

    def _flush_report(
        self, commitment: Commitment, failure: TaskFailureRecord | None = None
    ) -> None:
        """Send one combined progress report for everything unreported."""

        workflow_id = commitment.workflow_id
        completions = tuple(self._unsent_completions.pop(workflow_id, ()))
        delta = self._unreported_unexpected.pop(workflow_id, 0)
        self._send(
            WorkflowProgressReport(
                sender=self.host_id,
                recipient=commitment.initiator,
                workflow_id=workflow_id,
                completions=completions,
                failures=(failure,) if failure is not None else (),
                unexpected_labels=delta,
            )
        )

    # -- reporting ---------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.succeeded)

    @property
    def failed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.succeeded)

    def __repr__(self) -> str:
        return (
            f"ExecutionManager(host={self.host_id!r}, pending={len(self._pending)}, "
            f"completed={self.completed_count})"
        )
