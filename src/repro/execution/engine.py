"""The Execution Manager: decentralized, condition-driven service invocation.

After allocation, each participant is on its own: "the execution phase of an
open workflow proceeds in a fully decentralized, distributed manner" (paper,
Section 3.2).  To meet a commitment the participant must (1) acquire the
required inputs from the executors of the preceding tasks, (2) be at the
required location, and (3) execute the service at the required time; once
executed, it communicates the outputs to any participants that require them.

:class:`ExecutionManager` implements exactly that loop for one host.  It
"monitors the input message and time conditions required for each scheduled
service invocation ... once the necessary conditions are met, it triggers
service execution, and publishes any output messages" (Section 4.2).
Location condition (2) is represented by the travel time already blocked out
in the commitment: the manager will not fire before ``commitment.start``,
by which time the travel has taken place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.errors import ExecutionError
from ..net.messages import LabelDataMessage, Message, TaskCompleted, TaskFailed
from ..scheduling.commitments import Commitment, CommitmentOutcome
from ..sim.events import EventScheduler
from .services import ServiceManager

SendFunction = Callable[[Message], None]


@dataclass
class PendingInvocation:
    """Book-keeping for one commitment awaiting its trigger conditions."""

    commitment: Commitment
    received_inputs: dict[str, object] = field(default_factory=dict)
    started: bool = False
    completed: bool = False

    @property
    def task_name(self) -> str:
        return self.commitment.task.name

    def inputs_satisfied(self) -> bool:
        """Are the data prerequisites met?

        Trigger labels are considered available from the outset.  A
        conjunctive task needs every remaining input; a disjunctive task
        needs at least one of its inputs (a trigger label counts).
        """

        task = self.commitment.task
        available = set(self.received_inputs) | set(self.commitment.trigger_labels)
        needed = task.inputs
        if not needed:
            return True
        if task.is_conjunctive:
            return needed <= available
        return bool(needed & available)

    def missing_inputs(self) -> frozenset[str]:
        available = set(self.received_inputs) | set(self.commitment.trigger_labels)
        return frozenset(self.commitment.task.inputs - available)


class ExecutionManager:
    """Runs the commitments of one host.

    Parameters
    ----------
    host_id:
        The owning host.
    scheduler:
        The shared event scheduler (provides time and timers).
    services:
        The host's service manager, used to actually invoke services.
    send:
        Callback used to hand outgoing messages to the communications layer.
    """

    def __init__(
        self,
        host_id: str,
        scheduler: EventScheduler,
        services: ServiceManager,
        send: SendFunction,
    ) -> None:
        self.host_id = host_id
        self.scheduler = scheduler
        self.services = services
        self._send = send
        self._pending: dict[tuple[str, str], PendingInvocation] = {}
        self.outcomes: list[CommitmentOutcome] = []

    # -- commitment intake ---------------------------------------------------
    def watch(self, commitment: Commitment) -> PendingInvocation:
        """Start monitoring the conditions of a newly accepted commitment."""

        key = (commitment.workflow_id, commitment.task.name)
        if key in self._pending:
            return self._pending[key]
        pending = PendingInvocation(commitment)
        self._pending[key] = pending
        # Time condition: wake up when the scheduled start arrives.  Input
        # messages arriving earlier are recorded but do not trigger execution
        # before the committed time.
        delay = max(0.0, commitment.start - self.scheduler.clock.now())
        self.scheduler.schedule_in(
            delay,
            lambda: self._maybe_execute(key),
            description=f"start-window {commitment.task.name}",
        )
        return pending

    def pending_invocations(self) -> list[PendingInvocation]:
        return list(self._pending.values())

    def pending_for_workflow(self, workflow_id: str) -> list[PendingInvocation]:
        return [
            inv for (wid, _), inv in self._pending.items() if wid == workflow_id
        ]

    # -- input arrival ---------------------------------------------------------
    def deliver_label(self, message: LabelDataMessage) -> None:
        """Record an input label delivered by another participant."""

        delivered = False
        for (wid, _), pending in list(self._pending.items()):
            if wid != message.workflow_id:
                continue
            if message.label in pending.commitment.task.inputs:
                pending.received_inputs[message.label] = message.value
                delivered = True
                self._maybe_execute((wid, pending.task_name))
        if not delivered:
            # Late or unexpected data; harmless, but worth counting for tests.
            self.unexpected_labels = getattr(self, "unexpected_labels", 0) + 1

    # -- condition check and execution ----------------------------------------------
    def _maybe_execute(self, key: tuple[str, str]) -> None:
        pending = self._pending.get(key)
        if pending is None or pending.started or pending.completed:
            return
        commitment = pending.commitment
        now = self.scheduler.clock.now()
        if now < commitment.start:
            return
        if not pending.inputs_satisfied():
            return
        pending.started = True
        duration = max(
            commitment.task.duration, self.services.expected_duration(commitment.task)
        )
        self.scheduler.schedule_in(
            duration,
            lambda: self._complete(key),
            description=f"execute {commitment.task.name}",
        )

    def _complete(self, key: tuple[str, str]) -> None:
        pending = self._pending.get(key)
        if pending is None or pending.completed:
            return
        commitment = pending.commitment
        inputs = dict(pending.received_inputs)
        for trigger in commitment.trigger_labels:
            inputs.setdefault(trigger, {"trigger": True})
        try:
            outputs = self.services.invoke(commitment.task, inputs)
        except ExecutionError as exc:
            pending.completed = True
            self.outcomes.append(
                CommitmentOutcome(
                    commitment,
                    completed_at=self.scheduler.clock.now(),
                    succeeded=False,
                    failure_reason=str(exc),
                )
            )
            self._notify_failure(commitment, str(exc))
            self._pending.pop(key, None)
            return

        pending.completed = True
        sent_labels = self._publish_outputs(commitment, outputs)
        self.outcomes.append(
            CommitmentOutcome(
                commitment,
                completed_at=self.scheduler.clock.now(),
                succeeded=True,
                outputs_sent=sent_labels,
            )
        )
        self._notify_initiator(commitment, outputs)
        self._pending.pop(key, None)

    # -- output publication --------------------------------------------------------
    def _publish_outputs(
        self, commitment: Commitment, outputs: Mapping[str, object]
    ) -> frozenset[str]:
        sent: set[str] = set()
        now = self.scheduler.clock.now()
        for label, destinations in commitment.output_destinations.items():
            value = outputs.get(label)
            for destination in destinations:
                if destination == self.host_id:
                    # Local delivery still goes through the same code path the
                    # remote case uses, but without crossing the network.
                    self.deliver_label(
                        LabelDataMessage(
                            sender=self.host_id,
                            recipient=self.host_id,
                            workflow_id=commitment.workflow_id,
                            label=label,
                            value=value,
                            produced_by=self.host_id,
                            produced_at=now,
                        )
                    )
                else:
                    self._send(
                        LabelDataMessage(
                            sender=self.host_id,
                            recipient=destination,
                            workflow_id=commitment.workflow_id,
                            label=label,
                            value=value,
                            produced_by=self.host_id,
                            produced_at=now,
                        )
                    )
                sent.add(label)
        return frozenset(sent)

    def _notify_failure(self, commitment: Commitment, reason: str) -> None:
        """Report an execution failure back to the initiator (repair trigger)."""

        if not commitment.initiator:
            return
        self._send(
            TaskFailed(
                sender=self.host_id,
                recipient=commitment.initiator,
                workflow_id=commitment.workflow_id,
                task_name=commitment.task.name,
                failed_at=self.scheduler.clock.now(),
                reason=reason,
            )
        )

    def _notify_initiator(
        self, commitment: Commitment, outputs: Mapping[str, object]
    ) -> None:
        if not commitment.initiator:
            return
        message = TaskCompleted(
            sender=self.host_id,
            recipient=commitment.initiator,
            workflow_id=commitment.workflow_id,
            task_name=commitment.task.name,
            completed_at=self.scheduler.clock.now(),
            outputs=frozenset(outputs),
        )
        if commitment.initiator == self.host_id:
            # The initiator executing its own task records completion locally;
            # the host wires this callback up at construction time.
            self._send(message)
        else:
            self._send(message)

    # -- reporting ---------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.succeeded)

    @property
    def failed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.succeeded)

    def __repr__(self) -> str:
        return (
            f"ExecutionManager(host={self.host_id!r}, pending={len(self._pending)}, "
            f"completed={self.completed_count})"
        )
