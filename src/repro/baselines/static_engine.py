"""A conventional, statically specified workflow engine (baseline).

The related-work systems the paper contrasts itself with (ActiveBPEL,
Oracle Workflow, CiAN, ...) all "assume that a thoughtfully designed and
fully specified workflow already exists".  :class:`StaticWorkflowEngine`
models that assumption in its simplest useful form: the workflow graph is
fixed at deployment time, and at run time the engine can only check whether
the currently available capabilities suffice to execute it and, if so,
simulate its execution order.  It cannot adapt the graph to the community,
which is exactly the gap the open workflow paradigm fills; the baseline
benchmarks quantify that gap on the catering scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from ..core.construction import (
    ColoringState,
    ConstructionResult,
    ConstructionStatistics,
)
from ..core.errors import ExecutionError
from ..core.solver import Solver, TaskFilter
from ..core.specification import Specification
from ..core.supergraph import Supergraph
from ..core.tasks import Task
from ..core.workflow import Workflow


@dataclass
class StaticExecutionReport:
    """What happened when the static workflow was (attempted to be) executed."""

    executed_tasks: list[str] = field(default_factory=list)
    blocked_tasks: dict[str, str] = field(default_factory=dict)
    produced_labels: set[str] = field(default_factory=set)

    @property
    def succeeded(self) -> bool:
        return not self.blocked_tasks

    def as_dict(self) -> dict[str, object]:
        return {
            "executed_tasks": list(self.executed_tasks),
            "blocked_tasks": dict(self.blocked_tasks),
            "produced_labels": sorted(self.produced_labels),
            "succeeded": self.succeeded,
        }


class StaticWorkflowEngine:
    """Executes a workflow whose graph was handcrafted ahead of time.

    Parameters
    ----------
    tasks:
        The fixed workflow definition.  It must form a valid workflow; the
        engine validates it once at construction, mirroring the offline
        design step of conventional workflow management systems.
    """

    def __init__(self, tasks: Iterable[Task]) -> None:
        self.workflow = Workflow(list(tasks))

    # -- static analysis -----------------------------------------------------
    def required_service_types(self) -> frozenset[str]:
        """Every service type the fixed workflow depends on."""

        return frozenset(
            task.service_type
            for task in self.workflow.tasks.values()
            if task.service_type is not None
        )

    def can_execute(self, available_service_types: Iterable[str]) -> bool:
        """True when the available capabilities cover every task of the graph.

        This is the static engine's whole notion of adaptation: a yes/no
        feasibility check.  There is no way to substitute an alternative
        task when a capability is missing.
        """

        available = frozenset(available_service_types)
        return self.required_service_types() <= available

    def missing_capabilities(
        self, available_service_types: Iterable[str]
    ) -> frozenset[str]:
        """The capabilities whose absence blocks the fixed workflow."""

        return self.required_service_types() - frozenset(available_service_types)

    # -- execution ----------------------------------------------------------------
    def execute(
        self,
        available_service_types: Iterable[str],
        initial_labels: Iterable[str],
        providers: Mapping[str, Sequence[str]] | None = None,
    ) -> StaticExecutionReport:
        """Simulate executing the fixed workflow.

        Tasks run in topological order; a task runs only when its input
        labels have been produced (or were initially available) and a
        capable provider exists.  ``providers`` optionally maps service
        types to host names purely for reporting purposes.
        """

        available = frozenset(available_service_types)
        report = StaticExecutionReport()
        report.produced_labels = set(initial_labels)
        for task_name in self.workflow.task_order():
            task = self.workflow.task(task_name)
            if task.service_type not in available:
                report.blocked_tasks[task_name] = (
                    f"no available provider for service {task.service_type!r}"
                )
                continue
            if task.is_conjunctive:
                ready = task.inputs <= report.produced_labels
            else:
                ready = bool(task.inputs & report.produced_labels)
            if not ready:
                report.blocked_tasks[task_name] = "inputs never became available"
                continue
            report.executed_tasks.append(task_name)
            report.produced_labels |= task.outputs
        return report

    def execute_or_raise(
        self, available_service_types: Iterable[str], initial_labels: Iterable[str]
    ) -> StaticExecutionReport:
        """Like :meth:`execute` but raises when any task was blocked."""

        report = self.execute(available_service_types, initial_labels)
        if not report.succeeded:
            blocked = ", ".join(sorted(report.blocked_tasks))
            raise ExecutionError(f"static workflow blocked at: {blocked}")
        return report

    def as_solver(self) -> "StaticSolver":
        """This engine's fixed workflow exposed through the Solver API."""

        return StaticSolver(self)

    def __repr__(self) -> str:
        return f"StaticWorkflowEngine(tasks={sorted(self.workflow.task_names)})"


class StaticSolver(Solver):
    """Adapts a fixed, pre-specified workflow to the Solver API.

    This is the conventional-engine ablation point: ``solve`` ignores the
    supergraph entirely and answers with the deployment-time workflow when
    it happens to satisfy the specification (inset covered by the triggers,
    every goal among its sinks), and fails otherwise.  It quantifies the
    gap the open workflow paradigm fills — the static graph cannot adapt to
    what the community actually knows.
    """

    name = "static"

    def __init__(self, engine: StaticWorkflowEngine) -> None:
        super().__init__()
        self._engine = engine

    def solve(
        self,
        supergraph: Supergraph,
        specification: Specification,
        task_filter: TaskFilter | None = None,
        filter_token: Hashable | None = None,
    ) -> ConstructionResult:
        workflow = self._engine.workflow
        stats = ConstructionStatistics(
            supergraph_tasks=len(supergraph.task_names),
            supergraph_labels=len(supergraph.labels),
            supergraph_edges=supergraph.edge_count,
            fragments_considered=len(supergraph.fragment_ids),
        )
        filtered_out = [
            name
            for name in sorted(workflow.task_names)
            if task_filter is not None and not task_filter(workflow.task(name))
        ]
        fits = (
            not filtered_out
            and workflow.inset <= specification.triggers
            and specification.goals <= workflow.outset
        )
        if fits:
            result = ConstructionResult(
                specification, workflow, ColoringState(), stats
            )
        elif filtered_out:
            result = ConstructionResult(
                specification,
                None,
                ColoringState(),
                stats,
                reason=(
                    "static workflow uses excluded/unsupported tasks: "
                    f"{filtered_out}"
                ),
            )
        else:
            result = ConstructionResult(
                specification,
                None,
                ColoringState(),
                stats,
                reason=(
                    "statically specified workflow does not satisfy the "
                    f"specification (inset={sorted(workflow.inset)}, "
                    f"outset={sorted(workflow.outset)})"
                ),
            )
        return self._record(result)
