"""Baseline comparators: static workflow engine and a centralized planner.

Both baselines also implement the :class:`~repro.core.solver.Solver`
strategy interface (:class:`PlannerSolver`, :class:`StaticSolver`) so the
ablation benchmarks swap strategies behind the workflow manager's
``solver=`` hook instead of maintaining separate code paths.
"""

from .planner import ForwardChainingPlanner, PlannerResult, PlannerSolver
from .static_engine import (
    StaticExecutionReport,
    StaticSolver,
    StaticWorkflowEngine,
)

__all__ = [
    "ForwardChainingPlanner",
    "PlannerResult",
    "PlannerSolver",
    "StaticExecutionReport",
    "StaticSolver",
    "StaticWorkflowEngine",
]
