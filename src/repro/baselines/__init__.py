"""Baseline comparators: static workflow engine and a centralized planner."""

from .planner import ForwardChainingPlanner, PlannerResult
from .static_engine import StaticExecutionReport, StaticWorkflowEngine

__all__ = [
    "ForwardChainingPlanner",
    "PlannerResult",
    "StaticExecutionReport",
    "StaticWorkflowEngine",
]
