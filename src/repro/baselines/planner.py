"""A centralized forward-chaining planner (baseline comparator).

The related work on automatic service composition (SWORD's rule-based
chaining, Golog / PDDL planners) assumes a centralized knowledge base and
synthesises a plan by state-space search.  This module provides such a
baseline: a forward-chaining planner over the same task model used by the
open workflow constructor.  It serves two purposes:

* as an *oracle* in the property-based tests — whenever the planner finds a
  plan, the colouring construction algorithm must also report the
  specification as feasible, and vice versa;
* as a *performance comparator* in the ablation benchmarks — forward
  chaining enumerates applicable tasks breadth-first and typically touches
  far more of the supergraph than the goal-directed pruning phase keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.fragments import KnowledgeSet
from ..core.specification import Specification
from ..core.tasks import Task


@dataclass
class PlannerResult:
    """Outcome of a forward-chaining planning run."""

    succeeded: bool
    plan: list[str] = field(default_factory=list)
    """Task names in the order they were applied."""

    reachable_labels: set[str] = field(default_factory=set)
    expansions: int = 0
    reason: str = ""

    def __repr__(self) -> str:
        status = "ok" if self.succeeded else f"failed ({self.reason})"
        return f"PlannerResult({status}, plan_length={len(self.plan)})"


class ForwardChainingPlanner:
    """Breadth-first forward chaining from the triggers towards the goals.

    The planner maintains the set of labels known to be achievable, starting
    from the triggering conditions, and repeatedly applies any task whose
    precondition is satisfied (all inputs for conjunctive tasks, any one
    input for disjunctive tasks) until every goal label is achievable or no
    new task applies.  The applied-task sequence is then trimmed to the
    tasks actually needed for the goals by a backwards pass.
    """

    def __init__(self, knowledge: KnowledgeSet | Iterable) -> None:
        if not isinstance(knowledge, KnowledgeSet):
            knowledge = KnowledgeSet(knowledge)
        self._tasks: dict[str, Task] = {t.name: t for t in knowledge.all_tasks()}

    def plan(self, specification: Specification) -> PlannerResult:
        """Search for a plan satisfying ``specification``."""

        achieved: set[str] = set(specification.triggers)
        applied: list[str] = []
        applied_set: set[str] = set()
        result = PlannerResult(succeeded=False)

        progress = True
        while progress and not specification.goals <= achieved:
            progress = False
            for name in sorted(self._tasks):
                if name in applied_set:
                    continue
                task = self._tasks[name]
                result.expansions += 1
                if self._applicable(task, achieved):
                    applied.append(name)
                    applied_set.add(name)
                    achieved |= task.outputs
                    progress = True

        result.reachable_labels = achieved
        if not specification.goals <= achieved:
            missing = sorted(specification.goals - achieved)
            result.reason = f"goals not reachable: {missing}"
            return result

        result.succeeded = True
        result.plan = self._trim(applied, specification)
        return result

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _applicable(task: Task, achieved: set[str]) -> bool:
        if not task.inputs:
            return True
        if task.is_conjunctive:
            return task.inputs <= achieved
        return bool(task.inputs & achieved)

    def _trim(self, applied: list[str], specification: Specification) -> list[str]:
        """Drop applied tasks that do not contribute to any goal label."""

        needed_labels = set(specification.goals)
        needed_tasks: list[str] = []
        for name in reversed(applied):
            task = self._tasks[name]
            if task.outputs & needed_labels:
                needed_tasks.append(name)
                needed_labels -= task.outputs
                needed_labels |= {
                    label
                    for label in task.inputs
                    if label not in specification.triggers
                }
        needed_tasks.reverse()
        return needed_tasks

    def is_feasible(self, specification: Specification) -> bool:
        """True when forward chaining can reach every goal label."""

        return self.plan(specification).succeeded

    def __repr__(self) -> str:
        return f"ForwardChainingPlanner(tasks={len(self._tasks)})"
