"""A centralized forward-chaining planner (baseline comparator).

The related work on automatic service composition (SWORD's rule-based
chaining, Golog / PDDL planners) assumes a centralized knowledge base and
synthesises a plan by state-space search.  This module provides such a
baseline: a forward-chaining planner over the same task model used by the
open workflow constructor.  It serves two purposes:

* as an *oracle* in the property-based tests — whenever the planner finds a
  plan, the colouring construction algorithm must also report the
  specification as feasible, and vice versa;
* as a *performance comparator* in the ablation benchmarks — forward
  chaining enumerates applicable tasks breadth-first and typically touches
  far more of the supergraph than the goal-directed pruning phase keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..core.construction import ConstructionResult, WorkflowConstructor
from ..core.fragments import KnowledgeSet
from ..core.solver import Solver, TaskFilter
from ..core.specification import Specification
from ..core.supergraph import Supergraph
from ..core.tasks import Task


@dataclass
class PlannerResult:
    """Outcome of a forward-chaining planning run."""

    succeeded: bool
    plan: list[str] = field(default_factory=list)
    """Task names in the order they were applied."""

    reachable_labels: set[str] = field(default_factory=set)
    expansions: int = 0
    reason: str = ""

    def __repr__(self) -> str:
        status = "ok" if self.succeeded else f"failed ({self.reason})"
        return f"PlannerResult({status}, plan_length={len(self.plan)})"


class ForwardChainingPlanner:
    """Breadth-first forward chaining from the triggers towards the goals.

    The planner maintains the set of labels known to be achievable, starting
    from the triggering conditions, and repeatedly applies any task whose
    precondition is satisfied (all inputs for conjunctive tasks, any one
    input for disjunctive tasks) until every goal label is achievable or no
    new task applies.  The applied-task sequence is then trimmed to the
    tasks actually needed for the goals by a backwards pass.
    """

    def __init__(self, knowledge: KnowledgeSet | Iterable) -> None:
        if not isinstance(knowledge, KnowledgeSet):
            knowledge = KnowledgeSet(knowledge)
        self._tasks: dict[str, Task] = {t.name: t for t in knowledge.all_tasks()}

    @classmethod
    def from_tasks(cls, tasks: Iterable[Task]) -> "ForwardChainingPlanner":
        """Build a planner directly over a task table (e.g. a supergraph's)."""

        planner = cls(KnowledgeSet())
        planner._tasks = {t.name: t for t in tasks}
        return planner

    def plan(self, specification: Specification) -> PlannerResult:
        """Search for a plan satisfying ``specification``."""

        achieved: set[str] = set(specification.triggers)
        applied: list[str] = []
        applied_set: set[str] = set()
        result = PlannerResult(succeeded=False)

        progress = True
        while progress and not specification.goals <= achieved:
            progress = False
            for name in sorted(self._tasks):
                if name in applied_set:
                    continue
                task = self._tasks[name]
                result.expansions += 1
                if self._applicable(task, achieved):
                    applied.append(name)
                    applied_set.add(name)
                    achieved |= task.outputs
                    progress = True

        result.reachable_labels = achieved
        if not specification.goals <= achieved:
            missing = sorted(specification.goals - achieved)
            result.reason = f"goals not reachable: {missing}"
            return result

        result.succeeded = True
        result.plan = self._trim(applied, specification)
        return result

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _applicable(task: Task, achieved: set[str]) -> bool:
        if not task.inputs:
            return True
        if task.is_conjunctive:
            return task.inputs <= achieved
        return bool(task.inputs & achieved)

    def _trim(self, applied: list[str], specification: Specification) -> list[str]:
        """Drop applied tasks that do not contribute to any goal label."""

        needed_labels = set(specification.goals)
        needed_tasks: list[str] = []
        for name in reversed(applied):
            task = self._tasks[name]
            if task.outputs & needed_labels:
                needed_tasks.append(name)
                needed_labels -= task.outputs
                needed_labels |= {
                    label
                    for label in task.inputs
                    if label not in specification.triggers
                }
        needed_tasks.reverse()
        return needed_tasks

    def is_feasible(self, specification: Specification) -> bool:
        """True when forward chaining can reach every goal label."""

        return self.plan(specification).succeeded

    def __repr__(self) -> str:
        return f"ForwardChainingPlanner(tasks={len(self._tasks)})"


class PlannerSolver(Solver):
    """Adapts forward chaining to the :class:`~repro.core.solver.Solver` API.

    Feasibility and task selection come from breadth-first forward chaining
    over the supergraph's task table; a valid workflow graph is then
    extracted by running the colouring constructor *restricted to the
    planner's chosen tasks*, so the ablation benchmarks can swap this
    strategy into the workflow manager and compare it against the colouring
    solvers through one code path.  ``exploration_iterations`` on the result
    reports the planner's task expansions rather than colouring worklist
    pops.
    """

    name = "forward-chaining"

    def __init__(self) -> None:
        super().__init__()
        self._constructor = WorkflowConstructor()

    def solve(
        self,
        supergraph: Supergraph,
        specification: Specification,
        task_filter: TaskFilter | None = None,
        filter_token: Hashable | None = None,
    ) -> ConstructionResult:
        # Zero-input tasks are applicable to forward chaining but can never
        # be coloured green (the exploration guard requires a green parent),
        # so they are excluded here to keep the two strategies' feasibility
        # verdicts — and therefore the ablation comparison — aligned.
        tasks = [
            task
            for task in supergraph.tasks.values()
            if task.inputs and (task_filter is None or task_filter(task))
        ]
        planner = ForwardChainingPlanner.from_tasks(tasks)
        plan_result = planner.plan(specification)
        if not plan_result.succeeded:
            result = self._constructor.construct(
                supergraph, specification, task_filter=task_filter
            )
            result.statistics.exploration_iterations = plan_result.expansions
            return self._record(result)
        selected = frozenset(plan_result.plan)

        def planned(task: Task) -> bool:
            return task.name in selected and (
                task_filter is None or task_filter(task)
            )

        result = self._constructor.construct(
            supergraph, specification, task_filter=planned
        )
        result.statistics.exploration_iterations = plan_result.expansions
        return self._record(result)
