"""Graphviz (DOT) export for workflows, supergraphs, and colourings.

The paper explains the construction algorithm in terms of a coloured
supergraph (green exploration region, blue selected workflow).  These
helpers render exactly that picture so a run of the algorithm can be
inspected visually::

    from repro.viz import workflow_to_dot, coloring_to_dot

    print(workflow_to_dot(result.workflow))
    print(coloring_to_dot(supergraph, result.state))

The output is plain DOT text; render it with ``dot -Tpng`` or paste it into
any Graphviz viewer.  No third-party dependency is required.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.construction import Color, ColoringState
from ..core.graph import NodeRef
from ..core.supergraph import Supergraph
from ..core.workflow import Workflow

_COLOR_FILL = {
    Color.UNCOLORED: "white",
    Color.GREEN: "palegreen",
    Color.PURPLE: "plum",
    Color.BLUE: "lightblue",
}


def _quote(identifier: str) -> str:
    escaped = identifier.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _node_id(node: NodeRef) -> str:
    return _quote(f"{node.kind.value}:{node.name}")


def _label_node_line(name: str, fill: str = "white") -> str:
    return (
        f"  {_quote('label:' + name)} [label={_quote(name)}, shape=ellipse, "
        f"style=filled, fillcolor={fill}];"
    )


def _task_node_line(name: str, fill: str = "white", disjunctive: bool = False) -> str:
    shape = "diamond" if disjunctive else "box"
    return (
        f"  {_quote('task:' + name)} [label={_quote(name)}, shape={shape}, "
        f"style=filled, fillcolor={fill}];"
    )


def workflow_to_dot(workflow: Workflow, name: str = "workflow") -> str:
    """Render a valid workflow as a DOT digraph (tasks as boxes, labels as ovals)."""

    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for label in sorted(workflow.labels):
        lines.append(_label_node_line(label))
    for task_name in sorted(workflow.task_names):
        task = workflow.task(task_name)
        lines.append(_task_node_line(task_name, disjunctive=task.is_disjunctive))
    for edge in workflow.edges():
        lines.append(f"  {_node_id(edge.src)} -> {_node_id(edge.dst)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def supergraph_to_dot(supergraph: Supergraph, name: str = "supergraph") -> str:
    """Render a supergraph (cycles and multi-producer labels included)."""

    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for label in sorted(supergraph.labels):
        lines.append(_label_node_line(label))
    for task_name in sorted(supergraph.task_names):
        task = supergraph.task(task_name)
        lines.append(_task_node_line(task_name, disjunctive=task.is_disjunctive))
    for edge in supergraph.edges():
        lines.append(f"  {_node_id(edge.src)} -> {_node_id(edge.dst)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def coloring_to_dot(
    supergraph: Supergraph,
    state: ColoringState,
    name: str = "coloring",
    show_distances: bool = True,
) -> str:
    """Render a construction run: node fill colours follow the algorithm's colours.

    Blue edges (the selected workflow) are drawn bold; every other edge of
    the supergraph is grey.  Distances from the exploration phase are shown
    in the node labels when ``show_distances`` is true.
    """

    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node in supergraph.nodes():
        color = state.color_of(node)
        fill = _COLOR_FILL[color]
        caption = node.name
        distance = state.distance_of(node)
        if show_distances and distance != float("inf"):
            caption = f"{node.name}\\nd={int(distance)}"
        if node.is_label:
            lines.append(
                f"  {_node_id(node)} [label={_quote(caption)}, shape=ellipse, "
                f"style=filled, fillcolor={fill}];"
            )
        else:
            task = supergraph.task(node.name)
            shape = "diamond" if task.is_disjunctive else "box"
            lines.append(
                f"  {_node_id(node)} [label={_quote(caption)}, shape={shape}, "
                f"style=filled, fillcolor={fill}];"
            )
    blue_edges = set(state.blue_edges)
    for edge in supergraph.edges():
        if (edge.src, edge.dst) in blue_edges:
            lines.append(
                f"  {_node_id(edge.src)} -> {_node_id(edge.dst)} "
                "[color=blue, penwidth=2.5];"
            )
        else:
            lines.append(
                f"  {_node_id(edge.src)} -> {_node_id(edge.dst)} [color=gray70];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def allocation_to_dot(
    workflow: Workflow,
    allocation: Mapping[str, str],
    name: str = "allocation",
) -> str:
    """Render a workflow with tasks clustered by the host they were allocated to."""

    by_host: dict[str, list[str]] = {}
    for task_name in sorted(workflow.task_names):
        by_host.setdefault(allocation.get(task_name, "(unallocated)"), []).append(task_name)

    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", "  compound=true;"]
    for label in sorted(workflow.labels):
        lines.append(_label_node_line(label))
    for index, (host, task_names) in enumerate(sorted(by_host.items())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(host)};")
        lines.append("    style=rounded;")
        for task_name in task_names:
            task = workflow.task(task_name)
            lines.append("  " + _task_node_line(task_name, fill="lightyellow",
                                                disjunctive=task.is_disjunctive))
        lines.append("  }")
    for edge in workflow.edges():
        lines.append(f"  {_node_id(edge.src)} -> {_node_id(edge.dst)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(path: str, dot_text: str) -> None:
    """Write DOT text to a file (tiny helper for examples and notebooks)."""

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot_text)
