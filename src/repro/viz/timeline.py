"""Text timelines of schedules and workflow executions.

The paper's UI shows each participant a calendar of commitments with the
travel time blocked out (Figure 2(a)).  :func:`schedule_timeline` renders
the same information as an aligned text table, and
:func:`community_timeline` prints one section per host — handy in examples
and when debugging allocation decisions.
"""

from __future__ import annotations

import io
from typing import Iterable

from ..scheduling.commitments import Commitment
from ..scheduling.schedule import ScheduleManager


def _format_time(seconds: float) -> str:
    """Render simulated seconds as h:mm:ss (negative-safe)."""

    total = int(round(seconds))
    hours, remainder = divmod(abs(total), 3600)
    minutes, secs = divmod(remainder, 60)
    sign = "-" if total < 0 else ""
    return f"{sign}{hours}:{minutes:02d}:{secs:02d}"


def schedule_timeline(
    commitments: Iterable[Commitment], title: str = "Schedule"
) -> str:
    """Render a participant's commitments as an aligned text table.

    Each row shows the travel window (if any), the execution window, the
    task, the workflow it belongs to, and the location.
    """

    rows: list[list[str]] = [["travel from", "start", "end", "task", "workflow", "location"]]
    for commitment in sorted(commitments, key=lambda c: (c.start, c.task.name)):
        rows.append(
            [
                _format_time(commitment.blocked_from) if commitment.travel_time else "-",
                _format_time(commitment.start),
                _format_time(commitment.end),
                commitment.task.name,
                commitment.workflow_id,
                commitment.location or "anywhere",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    buffer = io.StringIO()
    buffer.write(title + "\n")
    if len(rows) == 1:
        buffer.write("  (no commitments)\n")
        return buffer.getvalue()
    for row in rows:
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        buffer.write("  " + line.rstrip() + "\n")
    return buffer.getvalue()


def manager_timeline(manager: ScheduleManager) -> str:
    """Shorthand: render a schedule manager's commitment database."""

    return schedule_timeline(
        manager.commitments, title=f"Schedule of {manager.host_id}"
    )


def community_timeline(community) -> str:
    """Render every host's schedule in a community, one section per host.

    ``community`` is a :class:`repro.host.community.Community`; the import
    is avoided here to keep this module usable with bare schedule managers.
    """

    sections = []
    for host in sorted(community, key=lambda h: h.host_id):
        sections.append(manager_timeline(host.schedule_manager))
    return "\n".join(sections)


def execution_report(community) -> str:
    """Summarise what every host actually executed (successes and failures)."""

    buffer = io.StringIO()
    for host in sorted(community, key=lambda h: h.host_id):
        outcomes = host.execution_manager.outcomes
        buffer.write(f"{host.host_id}: {len(outcomes)} executed\n")
        for outcome in sorted(outcomes, key=lambda o: o.completed_at):
            status = "ok" if outcome.succeeded else f"FAILED ({outcome.failure_reason})"
            buffer.write(
                f"  {_format_time(outcome.completed_at)}  "
                f"{outcome.commitment.task.name}  [{status}]\n"
            )
    return buffer.getvalue()
