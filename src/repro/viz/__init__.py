"""Visualisation helpers: DOT export and text timelines."""

from .dot import (
    allocation_to_dot,
    coloring_to_dot,
    supergraph_to_dot,
    workflow_to_dot,
    write_dot,
)
from .timeline import (
    community_timeline,
    execution_report,
    manager_timeline,
    schedule_timeline,
)

__all__ = [
    "allocation_to_dot",
    "coloring_to_dot",
    "community_timeline",
    "execution_report",
    "manager_timeline",
    "schedule_timeline",
    "supergraph_to_dot",
    "workflow_to_dot",
    "write_dot",
]
