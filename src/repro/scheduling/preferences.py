"""Participant preferences and willingness.

Service availability condition (5) of the paper asks "whether the
participant is willing (according to their preferences) to perform the
service".  :class:`ParticipantPreferences` captures the knobs a user could
set on their device: service types they refuse outright, a cap on how many
commitments they are willing to hold at once, working hours, and how long
their bids remain valid (which becomes the response deadline communicated
to the auction manager).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.tasks import Task


@dataclass(frozen=True)
class ParticipantPreferences:
    """Per-participant policy consulted before bidding on a task.

    Parameters
    ----------
    refused_service_types:
        Service types this participant will never perform, regardless of
        technical capability.
    max_commitments:
        Maximum number of outstanding commitments the participant accepts
        (``None`` means unlimited).
    working_hours:
        Optional ``(start, end)`` window in simulated seconds outside of
        which the participant will not schedule work (``None`` = any time).
    bid_validity:
        How long (seconds) a submitted bid remains valid; the auction
        manager must answer within this window.  ``float("inf")`` means the
        bid never expires.
    eagerness:
        A value in ``[0, 1]`` used only for tie-breaking experiments: more
        eager participants propose earlier start times when they have
        several free slots.  The default of 1.0 always proposes the
        earliest feasible slot.
    """

    refused_service_types: frozenset[str] = frozenset()
    max_commitments: int | None = None
    working_hours: tuple[float, float] | None = None
    bid_validity: float = float("inf")
    eagerness: float = 1.0
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.max_commitments is not None and self.max_commitments < 0:
            raise ValueError("max_commitments must be non-negative")
        if self.working_hours is not None:
            start, end = self.working_hours
            if end < start:
                raise ValueError("working hours end before they start")
        if self.bid_validity <= 0:
            raise ValueError("bid_validity must be positive")
        if not 0.0 <= self.eagerness <= 1.0:
            raise ValueError("eagerness must lie in [0, 1]")

    def is_willing(self, task: Task, current_commitments: int) -> tuple[bool, str]:
        """Decide whether to consider bidding on ``task`` at all.

        Returns ``(True, "")`` when willing, or ``(False, reason)``.
        """

        if task.service_type in self.refused_service_types:
            return False, f"refuses service type {task.service_type!r}"
        if (
            self.max_commitments is not None
            and current_commitments >= self.max_commitments
        ):
            return False, "commitment limit reached"
        return True, ""

    def within_working_hours(self, start: float, duration: float) -> bool:
        """True when the whole execution window falls inside working hours."""

        if self.working_hours is None:
            return True
        lo, hi = self.working_hours
        return lo <= start and start + duration <= hi

    def clamp_to_working_hours(self, start: float) -> float:
        """Push ``start`` forward to the beginning of working hours if needed."""

        if self.working_hours is None:
            return start
        lo, _hi = self.working_hours
        return max(start, lo)


ALWAYS_WILLING = ParticipantPreferences()
"""Default preferences: accept everything, bids never expire."""
