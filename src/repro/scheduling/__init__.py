"""Scheduling substrate: commitments, preferences, and the Schedule Manager."""

from .commitments import Commitment, CommitmentOutcome
from .preferences import ALWAYS_WILLING, ParticipantPreferences
from .schedule import ScheduleManager, SlotProposal

__all__ = [
    "ALWAYS_WILLING",
    "Commitment",
    "CommitmentOutcome",
    "ParticipantPreferences",
    "ScheduleManager",
    "SlotProposal",
]
