"""The Schedule Manager: availability, feasibility, and commitments.

The Schedule Manager is "the keystone component of the execution subsystem"
(paper, Section 4.2).  It manages the host's availability by tracking its
location, schedule, and scheduling preferences, and it maintains the
database of all commitments — the key data structure for both allocation
and execution of an open workflow.

Two questions are answered here:

* *Can I commit to this task?*  (used while preparing a bid) — the manager
  searches for the earliest feasible slot taking into account existing
  commitments, the travel time to the task's location, and the
  participant's preferences.
* *What am I committed to?* — the commitment database consulted by the
  execution manager and by willingness checks for later bids.

The commitment database is *indexed*: commitments are kept sorted by the
start of their blocked period, and overlap queries bisect into the window
that could possibly intersect (bounded by the longest blocked span seen),
so ``is_free`` costs O(log n + candidates) instead of scanning every
commitment the host ever accepted.  On a long-lived host answering bids for
its hundredth workflow this is the difference between slot searches that
scale with the *request* and ones that scale with the host's history.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.errors import ScheduleConflictError, SchedulingError
from ..core.tasks import Task
from ..mobility.geometry import Point
from ..mobility.locations import LocationDirectory, TravelModel
from ..mobility.models import MobilityModel, StaticMobility
from ..sim.clock import Clock, SimulatedClock
from .commitments import Commitment
from .preferences import ALWAYS_WILLING, ParticipantPreferences


@dataclass(frozen=True)
class SlotProposal:
    """A feasible execution slot found by :meth:`ScheduleManager.find_slot`."""

    start: float
    travel_time: float
    location: str | None

    @property
    def blocked_from(self) -> float:
        return self.start - self.travel_time


class ScheduleManager:
    """Tracks one participant's commitments, location, and availability.

    Parameters
    ----------
    host_id:
        The owning host (used in error messages and reports).
    clock:
        Source of "now" for feasibility checks.
    locations:
        The shared directory of named places.
    travel_model:
        Converts distances to travel seconds.
    mobility:
        Where the host currently is (a mobility model or a fixed point).
    preferences:
        The participant's willingness policy.
    """

    def __init__(
        self,
        host_id: str,
        clock: Clock | None = None,
        locations: LocationDirectory | None = None,
        travel_model: TravelModel | None = None,
        mobility: MobilityModel | Point | None = None,
        preferences: ParticipantPreferences = ALWAYS_WILLING,
        durability=None,
    ) -> None:
        self.host_id = host_id
        self.durability = durability
        self.clock = clock if clock is not None else SimulatedClock()
        self.locations = locations if locations is not None else LocationDirectory()
        self.travel_model = travel_model if travel_model is not None else TravelModel()
        if mobility is None:
            mobility = StaticMobility(Point(0.0, 0.0))
        elif isinstance(mobility, Point):
            mobility = StaticMobility(mobility)
        self.mobility = mobility
        self.preferences = preferences
        #: Commitments sorted by ``blocked_from`` with a parallel key list
        #: for bisection; ``_max_span`` bounds how far left of a query
        #: window an overlapping commitment's blocked period can begin.
        self._commitments: list[Commitment] = []
        self._blocked_starts: list[float] = []
        self._max_span: float = 0.0

    # -- location ------------------------------------------------------------
    def current_position(self) -> Point:
        """The host's physical position at the current simulated time."""

        return self.mobility.position_at(self.clock.now())

    def travel_time_to(self, location_name: str | None, at_time: float | None = None) -> float:
        """Seconds needed to reach ``location_name`` from the host's position.

        The starting point is the location of the last commitment that ends
        before ``at_time`` (the host will already be there), or the host's
        current physical position when there is no earlier commitment.
        """

        if location_name is None:
            return 0.0
        destination = self.locations.position_of(location_name)
        if destination is None:
            return self.travel_model.unknown_location_penalty
        reference_time = self.clock.now() if at_time is None else at_time
        origin = self._position_before(reference_time)
        return self.travel_model.travel_seconds(origin, destination)

    def _position_before(self, timestamp: float) -> Point:
        previous = None
        # Only commitments whose blocked period starts before ``timestamp``
        # can have ended by then (end >= blocked_from).
        hi = bisect_right(self._blocked_starts, timestamp)
        for commitment in self._commitments[:hi]:
            if commitment.end <= timestamp and commitment.location is not None:
                if previous is None or commitment.end > previous.end:
                    previous = commitment
        if previous is not None:
            position = self.locations.position_of(previous.location or "")
            if position is not None:
                return position
        return self.current_position()

    # -- commitment database -----------------------------------------------------
    @property
    def commitments(self) -> list[Commitment]:
        """All commitments, ordered by start time."""

        return sorted(self._commitments, key=lambda c: (c.start, c.task.name))

    def commitment_count(self) -> int:
        return len(self._commitments)

    def commitments_for_workflow(self, workflow_id: str) -> list[Commitment]:
        return [c for c in self.commitments if c.workflow_id == workflow_id]

    def has_commitment_for(self, workflow_id: str, task_name: str) -> bool:
        return any(
            c.workflow_id == workflow_id and c.task.name == task_name
            for c in self._commitments
        )

    def _overlapping(self, start: float, end: float) -> Iterator[Commitment]:
        """The commitments whose blocked period intersects ``[start, end)``.

        An overlapping commitment must begin before ``end`` and end after
        ``start``; since a blocked period spans at most ``_max_span``
        seconds, its start also lies after ``start - _max_span``.  Two
        bisections bound the candidates, each of which is checked exactly.
        """

        lo = bisect_left(self._blocked_starts, start - self._max_span)
        hi = bisect_left(self._blocked_starts, end)
        for commitment in self._commitments[lo:hi]:
            if commitment.overlaps_window(start, end):
                yield commitment

    def add_commitment(self, commitment: Commitment) -> None:
        """Add a commitment, enforcing that blocked periods never overlap."""

        for existing in self._overlapping(commitment.blocked_from, commitment.end):
            raise ScheduleConflictError(
                f"commitment for {commitment.task.name!r} "
                f"({commitment.blocked_from:.1f}-{commitment.end:.1f}) overlaps "
                f"{existing.task.name!r} ({existing.blocked_from:.1f}-{existing.end:.1f})"
            )
        index = bisect_right(self._blocked_starts, commitment.blocked_from)
        self._commitments.insert(index, commitment)
        insort(self._blocked_starts, commitment.blocked_from)
        self._max_span = max(self._max_span, commitment.end - commitment.blocked_from)
        if self.durability is not None:
            self.durability.commitment_added(commitment)

    def remove_commitment(self, commitment_id: str) -> bool:
        """Drop a commitment (e.g. the workflow was cancelled); returns success."""

        before = len(self._commitments)
        self._reindex(
            c for c in self._commitments if c.commitment_id != commitment_id
        )
        removed = len(self._commitments) != before
        if removed and self.durability is not None:
            self.durability.commitment_released(commitment_id)
        return removed

    def restore_commitments(self, commitments: Iterable[Commitment]) -> None:
        """Re-insert recovered commitments without re-journaling them.

        Used by the durable-recovery path: the journal already holds these
        records, so appends are suspended for the mechanical re-insertion.
        """

        if self.durability is not None:
            with self.durability.suspended():
                self.add_commitments(commitments)
        else:
            self.add_commitments(commitments)

    def _reindex(self, commitments: Iterable[Commitment]) -> None:
        self._commitments = sorted(commitments, key=lambda c: c.blocked_from)
        self._blocked_starts = [c.blocked_from for c in self._commitments]
        self._max_span = max(
            (c.end - c.blocked_from for c in self._commitments), default=0.0
        )

    def is_free(self, start: float, end: float) -> bool:
        """True when no commitment blocks any part of ``[start, end)``."""

        return next(self._overlapping(start, end), None) is None

    def busy_windows(self) -> list[tuple[float, float]]:
        """The blocked periods, sorted — useful for display and tests."""

        return sorted(
            (c.blocked_from, c.end) for c in self._commitments
        )

    # -- slot search ---------------------------------------------------------------
    def find_slot(
        self,
        task: Task,
        earliest_start: float | None = None,
        deadline: float = float("inf"),
    ) -> SlotProposal | None:
        """Find the earliest feasible execution slot for ``task``.

        The slot must begin at or after ``earliest_start`` (default: now),
        leave room for travelling to the task's location, not overlap any
        existing commitment, respect working hours, and finish before
        ``deadline``.  Returns ``None`` when no such slot exists.
        """

        now = self.clock.now()
        candidate = max(now, earliest_start if earliest_start is not None else now)
        candidate = self.preferences.clamp_to_working_hours(candidate)
        travel = self.travel_time_to(task.location, at_time=candidate)

        # Candidate start times worth trying: the requested start and the end
        # of every existing commitment (plus travel).  One of these is always
        # the earliest feasible slot because feasibility only changes at
        # commitment boundaries.  Boundaries are clamped *before* the dedup:
        # every commitment that already ended proposes the same "start right
        # at the candidate" slot, and a host with a long history would
        # otherwise re-probe that identical window once per past commitment.
        boundaries = {
            max(c.end + travel, candidate) for c in self._commitments
        }
        boundaries.add(candidate)
        for start in sorted(boundaries):
            start = self.preferences.clamp_to_working_hours(start)
            blocked_from = start - travel
            if blocked_from < now:
                start = now + travel
                blocked_from = now
            end = start + task.duration
            if end > deadline:
                continue
            if not self.preferences.within_working_hours(start, task.duration):
                continue
            if self.is_free(blocked_from, end):
                return SlotProposal(start=start, travel_time=travel, location=task.location)
        return None

    def can_commit_to(
        self,
        task: Task,
        earliest_start: float | None = None,
        deadline: float = float("inf"),
    ) -> tuple[SlotProposal | None, str]:
        """Full availability check used when preparing a bid.

        Combines the willingness preferences (condition 5 of the paper) with
        the time/travel feasibility search (conditions 2-4).  Returns the
        proposed slot and an empty string, or ``(None, reason)``.
        """

        willing, reason = self.preferences.is_willing(task, len(self._commitments))
        if not willing:
            return None, reason
        slot = self.find_slot(task, earliest_start=earliest_start, deadline=deadline)
        if slot is None:
            return None, "no feasible slot before the deadline"
        return slot, ""

    # -- bulk helpers ----------------------------------------------------------------
    def add_commitments(self, commitments: Iterable[Commitment]) -> None:
        for commitment in commitments:
            self.add_commitment(commitment)

    def clear(self) -> None:
        """Drop every commitment (used between benchmark repetitions)."""

        had_commitments = bool(self._commitments)
        self._reindex(())
        if had_commitments and self.durability is not None:
            self.durability.schedule_cleared()

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[now, now + horizon)`` blocked by commitments."""

        if horizon <= 0:
            raise SchedulingError("utilisation horizon must be positive")
        now = self.clock.now()
        end = now + horizon
        busy = 0.0
        for commitment in self._commitments:
            lo = max(now, commitment.blocked_from)
            hi = min(end, commitment.end)
            busy += max(0.0, hi - lo)
        return min(1.0, busy / horizon)

    def __repr__(self) -> str:
        return (
            f"ScheduleManager(host={self.host_id!r}, "
            f"commitments={len(self._commitments)})"
        )
