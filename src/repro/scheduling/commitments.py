"""Commitments: scheduled service invocations.

Once a participant wins the auction for a task it adds a *commitment* to its
schedule (paper, Section 3.2).  The commitment contains all the information
the participant needs to meet its obligation without any further
coordination: what service to run, when, where, which inputs to wait for and
from whom, and which participants need the outputs afterwards.  The travel
time needed to reach the task's location is blocked out in the schedule as
well, exactly as the paper's calendar UI does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from ..core.tasks import Task

_commitment_counter = itertools.count(1)


def _next_commitment_id() -> str:
    return f"commitment-{next(_commitment_counter)}"


@dataclass(frozen=True)
class Commitment:
    """A firm promise to execute one task of one workflow.

    Parameters
    ----------
    task:
        The task to execute (carries service type, duration, and location).
    workflow_id:
        The open workflow this commitment belongs to.
    start:
        Scheduled start of the service execution (simulated seconds).
    travel_time:
        Seconds blocked out immediately *before* ``start`` for travelling to
        the task's location.
    input_sources:
        For every input label, the host expected to deliver it.
    output_destinations:
        For every output label, the hosts that must receive it.
    trigger_labels:
        Input labels that are triggering conditions of the workflow and are
        therefore considered available from the outset.
    initiator:
        The host that constructed the workflow (receives completion
        notifications).
    """

    task: Task
    workflow_id: str
    start: float
    travel_time: float = 0.0
    input_sources: Mapping[str, str] = field(default_factory=dict)
    output_destinations: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    trigger_labels: frozenset[str] = frozenset()
    initiator: str = ""
    commitment_id: str = field(default_factory=_next_commitment_id, compare=False)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("commitment start must be non-negative")
        if self.travel_time < 0:
            raise ValueError("travel time must be non-negative")

    # -- time window -------------------------------------------------------
    @property
    def blocked_from(self) -> float:
        """Start of the blocked-out period (including travel)."""

        return self.start - self.travel_time

    @property
    def end(self) -> float:
        """End of the service execution."""

        return self.start + self.task.duration

    @property
    def duration(self) -> float:
        return self.task.duration

    def overlaps(self, other: "Commitment") -> bool:
        """True when the blocked periods of the two commitments intersect."""

        return self.blocked_from < other.end and other.blocked_from < self.end

    def overlaps_window(self, start: float, end: float) -> bool:
        """True when the commitment's blocked period intersects ``[start, end)``."""

        return self.blocked_from < end and start < self.end

    # -- inputs ------------------------------------------------------------
    @property
    def required_inputs(self) -> frozenset[str]:
        """Input labels that must arrive over the network before execution."""

        return self.task.inputs - self.trigger_labels

    @property
    def location(self) -> str | None:
        return self.task.location

    def __repr__(self) -> str:
        return (
            f"Commitment({self.task.name!r}, workflow={self.workflow_id!r}, "
            f"start={self.start:.1f}, duration={self.duration:.1f})"
        )


@dataclass(frozen=True)
class CommitmentOutcome:
    """Record of a completed (or failed) commitment, kept for reporting."""

    commitment: Commitment
    completed_at: float
    succeeded: bool
    outputs_sent: frozenset[str] = frozenset()
    failure_reason: str = ""

    def __repr__(self) -> str:
        status = "ok" if self.succeeded else f"failed: {self.failure_reason}"
        return f"CommitmentOutcome({self.commitment.task.name!r}, {status})"
