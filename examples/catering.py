#!/usr/bin/env python3
"""The corporate catering scenario of the paper (Figure 1 / Section 2.1).

An executive assistant asks the catering manager for breakfast and lunch for
an upcoming meeting.  The manager's device collects know-how from the other
staff devices (master chef, kitchen staff, wait staff), constructs a
workflow that satisfies the request, auctions the tasks, and everyone goes
about their scheduled activities.

The example then replays the paper's three context-sensitivity what-ifs:

* lunch is not requested           -> no lunch activities in the workflow;
* the master chef is out of office -> the omelet know-how is missing and a
  different breakfast alternative is chosen;
* the wait staff are absent        -> nobody can serve tables, so buffet
  service is selected.

Run with::

    python examples/catering.py
"""

from __future__ import annotations

from repro.host import Community, Workspace
from repro.workloads import catering


def solve(community: Community, triggers, goals, description: str) -> Workspace:
    print(f"--- {description}")
    print(f"    present: {', '.join(community.host_ids)}")
    workspace = community.submit_problem("manager", triggers, goals)
    community.run_until_allocated(workspace)
    if not workspace.is_allocated:
        print(f"    FAILED: {workspace.failure_reason}")
        print()
        return workspace
    print("    constructed workflow tasks and their allocation:")
    for task_name in workspace.workflow.task_order():
        host = workspace.allocation_outcome.allocation.get(task_name, "?")
        print(f"        {task_name:<28} -> {host}")
    community.run_until_completed(workspace)
    sim_seconds, _ = workspace.time_to_completion()
    print(f"    executed to completion in {sim_seconds / 3600:.1f} simulated hours")
    print()
    return workspace


def main() -> None:
    meals = [catering.BREAKFAST_SERVED, catering.LUNCH_SERVED]
    on_hand = [catering.BREAKFAST_INGREDIENTS, catering.LUNCH_INGREDIENTS]

    solve(
        catering.build_catering_community(),
        on_hand,
        meals,
        "Everyone present: breakfast and lunch for the executive meeting",
    )

    solve(
        catering.build_catering_community(),
        [catering.BREAKFAST_INGREDIENTS],
        [catering.BREAKFAST_SERVED],
        "What if lunch is not requested?",
    )

    without_chef = tuple(r for r in catering.ALL_ROLES if r.name != "master-chef")
    solve(
        catering.build_catering_community(roles=without_chef),
        [catering.BREAKFAST_INGREDIENTS],
        [catering.BREAKFAST_SERVED],
        "What if the master chef is out of the office?",
    )

    without_wait_staff = tuple(r for r in catering.ALL_ROLES if r.name != "wait-staff")
    solve(
        catering.build_catering_community(roles=without_wait_staff),
        on_hand,
        meals,
        "What if the wait staff are absent?  (lunch must fall back to buffet service)",
    )

    solve(
        catering.build_catering_community(),
        [catering.DOUGHNUTS_ORDERED],
        [catering.BREAKFAST_SERVED],
        "What if only ordered doughnuts are on hand?",
    )


if __name__ == "__main__":
    main()
