#!/usr/bin/env python3
"""Deploying an open workflow community from XML configuration files.

The paper's implementation configures each device with XML files containing
its task and service definitions (Section 4.1).  This example writes such a
configuration for a small field-hospital triage scenario, loads it through
:class:`repro.owms.OpenWorkflowSystem`, and solves a problem against it.

Run with::

    python examples/xml_deployment.py
"""

from __future__ import annotations

from repro.owms import OpenWorkflowSystem

FIELD_HOSPITAL_XML = """
<community>
  <location name="triage-tent" x="0" y="0"/>
  <location name="ward" x="60" y="0"/>
  <location name="pharmacy" x="30" y="40"/>

  <device id="triage-nurse">
    <position x="2" y="2"/>
    <fragments>
      <fragment id="triage" description="Assess an incoming patient">
        <task name="assess patient" duration="300" location="triage-tent">
          <input>patient arrived</input>
          <output>patient assessed</output>
        </task>
      </fragment>
    </fragments>
    <services>
      <service type="assess patient" duration="300"/>
    </services>
  </device>

  <device id="doctor">
    <position x="55" y="5"/>
    <fragments>
      <fragment id="treatment" description="Prescribe and supervise treatment">
        <task name="prescribe treatment" duration="600" location="ward">
          <input>patient assessed</input>
          <output>treatment prescribed</output>
        </task>
        <task name="supervise treatment" duration="1800" location="ward">
          <input>treatment prescribed</input>
          <input>medication delivered</input>
          <output>patient stabilised</output>
        </task>
      </fragment>
    </fragments>
    <services>
      <service type="prescribe treatment" duration="600"/>
      <service type="supervise treatment" duration="1800"/>
    </services>
    <preferences max-commitments="4"/>
  </device>

  <device id="pharmacist">
    <position x="30" y="38"/>
    <fragments>
      <fragment id="dispense" description="Dispense prescribed medication">
        <task name="dispense medication" duration="420" location="pharmacy">
          <input>treatment prescribed</input>
          <output>medication delivered</output>
        </task>
      </fragment>
    </fragments>
    <services>
      <service type="dispense medication" duration="420"/>
    </services>
  </device>
</community>
"""


def main() -> None:
    system = OpenWorkflowSystem.from_xml(FIELD_HOSPITAL_XML)
    print("Deployed devices:", ", ".join(system.hosts))
    print("Community knowledge:", system.community_knowledge_size(), "fragments")
    print()
    print("The triage nurse reports an arriving patient and asks for stabilisation.")

    report = system.solve(
        "triage-nurse",
        triggers=["patient arrived"],
        goals=["patient stabilised"],
        name="stabilise-incoming-patient",
    )

    print()
    print(f"Outcome: {report.phase}")
    print("Constructed workflow and allocation:")
    for task_name, host in report.task_assignments():
        print(f"    {task_name:<24} -> {host}")
    print(f"Completed tasks: {sorted(report.completed_tasks)}")
    print(f"Time to allocate:  {report.allocation_seconds * 1000:.2f} ms (processing)")
    print(f"Time to complete:  {report.completion_seconds / 60:.0f} simulated minutes")


if __name__ == "__main__":
    main()
