#!/usr/bin/env python3
"""Regenerate the paper's evaluation figures (Figures 4, 5, and 6).

Usage::

    python examples/run_experiments.py                 # all figures, quick settings
    python examples/run_experiments.py fig4            # only Figure 4
    python examples/run_experiments.py fig5 fig6       # a subset
    python examples/run_experiments.py all --runs 20   # more repetitions per point
    python examples/run_experiments.py ablations       # discovery/policy/baseline ablations
    python examples/run_experiments.py all --csv out/  # also write CSV files
    python examples/run_experiments.py all --parallel  # fan trials across all cores
    python examples/run_experiments.py scaling         # multi-hop ad hoc, 20-200 mobile hosts

    # distributed: serve the sweeps to repro-trial-worker processes
    python examples/run_experiments.py all --dispatch tcp://0.0.0.0:7209
    # ...then on each worker machine (or extra terminal):
    #     repro-trial-worker tcp://COORDINATOR_HOST:7209
    # or let the driver spawn local workers itself:
    python examples/run_experiments.py all --dispatch tcp://127.0.0.1:0 --serve-workers 2

The paper averages 1000 runs per point; pass ``--runs 1000`` to match (it
takes a while).  Each figure is printed as a table whose rows are path
lengths and whose columns are the figure's series, i.e. the same structure
as the plots in the paper.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.reporting import FigureResult, comparison_table
from repro.experiments import (
    TrialRunner,
    run_adhoc_scaling,
    run_baseline_comparison,
    run_discovery_ablation,
    run_figure4,
    run_figure5,
    run_figure6,
    run_policy_ablation,
)


def emit(figure: FigureResult, csv_dir: Path | None, filename: str) -> None:
    print(figure.to_table())
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        path = csv_dir / filename
        path.write_text(figure.to_csv(), encoding="utf-8")
        print(f"    (written to {path})")
    print()


def run_ablation_reports() -> None:
    discovery = run_discovery_ablation()
    rows = [
        (
            f"{p.num_tasks} tasks / path {p.path_length}",
            {
                "batch fragments": p.batch_fragments,
                "incremental fragments": p.incremental_fragments,
                "queries": p.incremental_queries,
                "savings": f"{p.transfer_savings:.0%}",
            },
        )
        for p in discovery
    ]
    print(
        comparison_table(
            "Ablation: batch vs incremental fragment discovery (fragments transferred)",
            rows,
            ["batch fragments", "incremental fragments", "queries", "savings"],
        )
    )

    policy = run_policy_ablation()
    rows = [
        (
            f"{p.policy} / path {p.path_length}",
            {
                "allocation seconds": f"{p.allocation_seconds:.4f}",
                "distinct winners": p.distinct_winners,
                "succeeded": p.succeeded,
            },
        )
        for p in policy
    ]
    print(
        comparison_table(
            "Ablation: auction bid-selection policies (100 tasks, 5 hosts)",
            rows,
            ["allocation seconds", "distinct winners", "succeeded"],
        )
    )

    baseline = run_baseline_comparison()
    rows = [
        (
            p.scenario,
            {
                "open workflow": "ok" if p.open_workflow_succeeded else "FAILS",
                "static workflow": "ok" if p.static_workflow_succeeded else "FAILS",
                "tasks constructed": p.open_workflow_tasks,
            },
        )
        for p in baseline
    ]
    print(
        comparison_table(
            "Baseline contrast: open workflow vs statically designed workflow "
            "(catering scenarios under participant absence)",
            rows,
            ["open workflow", "static workflow", "tasks constructed"],
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help="which experiments to run: fig4, fig5, fig6, scaling, ablations, or all",
    )
    parser.add_argument("--runs", type=int, default=None, help="repetitions per data point")
    parser.add_argument("--seed", type=int, default=20090514, help="master random seed")
    parser.add_argument("--csv", type=Path, default=None, help="directory for CSV output")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan independent trials across a process pool (all cores)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="process count for --parallel"
    )
    parser.add_argument(
        "--dispatch",
        default=None,
        metavar="tcp://HOST:PORT",
        help=(
            "serve the sweeps to repro-trial-worker processes over TCP "
            "instead of the local pool (port 0 picks a free port)"
        ),
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=0,
        metavar="N",
        help="with --dispatch: also spawn N local worker processes",
    )
    parser.add_argument(
        "--no-batch-execution",
        action="store_true",
        help=(
            "run every trial with the original per-label / per-task execution "
            "protocol instead of the batched one (same outcomes, more messages)"
        ),
    )
    args = parser.parse_args()
    batch_execution = not args.no_batch_execution
    if args.dispatch is not None:
        runner = TrialRunner(dispatch=args.dispatch)
    elif args.parallel or args.workers is not None:
        runner = TrialRunner(max_workers=args.workers)
    else:
        runner = None

    workers: list[subprocess.Popen] = []
    if args.dispatch is not None:
        address = runner.start_dispatch()
        print(f"dispatch coordinator listening on {address}")
        if args.serve_workers:
            workers = [
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.experiments.worker",
                        address,
                        "--id",
                        f"local-worker-{index}",
                    ]
                )
                for index in range(args.serve_workers)
            ]
            print(f"spawned {len(workers)} local worker(s)")
        else:
            print(f"waiting for workers: repro-trial-worker {address}")
    elif args.serve_workers:
        parser.error("--serve-workers needs --dispatch")

    wanted = {name.lower() for name in (args.figures or ["all"])}
    run_everything = "all" in wanted or not wanted

    # One runner (and hence one process pool, forked lazily on the first
    # parallel sweep, or one dispatch coordinator) serves every figure;
    # the try/finally releases the workers when the last figure is done.
    try:
        if run_everything or "fig4" in wanted:
            emit(
                run_figure4(
                    runs=args.runs,
                    seed=args.seed,
                    runner=runner,
                    batch_execution=batch_execution,
                ),
                args.csv,
                "figure4.csv",
            )
        if run_everything or "fig5" in wanted:
            emit(
                run_figure5(
                    runs=args.runs,
                    seed=args.seed,
                    runner=runner,
                    batch_execution=batch_execution,
                ),
                args.csv,
                "figure5.csv",
            )
        if run_everything or "fig6" in wanted:
            emit(
                run_figure6(
                    runs=args.runs,
                    seed=args.seed,
                    runner=runner,
                    batch_execution=batch_execution,
                ),
                args.csv,
                "figure6.csv",
            )
        if run_everything or "scaling" in wanted:
            emit(
                run_adhoc_scaling(
                    runs=args.runs,
                    seed=args.seed,
                    runner=runner,
                    batch_execution=batch_execution,
                ),
                args.csv,
                "adhoc_scaling.csv",
            )
        if run_everything or "ablations" in wanted:
            run_ablation_reports()
    finally:
        if runner is not None:
            runner.shutdown()  # dispatch mode: says Goodbye to every worker
        for worker in workers:
            try:
                worker.wait(timeout=15)
            except subprocess.TimeoutExpired:
                worker.kill()
        if args.dispatch is not None and runner is not None:
            print(
                f"dispatch: {runner.trials_run} trials, "
                f"{runner.segments_dispatched} workload segment(s) shipped "
                f"({runner.bytes_shared_wire} wire bytes for "
                f"{runner.bytes_shared_raw} raw), "
                f"{runner.bytes_wire_sent}B out / {runner.bytes_wire_received}B in, "
                f"{runner.workers_lost} worker(s) lost, "
                f"{runner.trials_reassigned} trial(s) reassigned"
            )


if __name__ == "__main__":
    main()
