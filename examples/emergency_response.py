#!/usr/bin/env python3
"""The construction-site emergency from the paper's introduction.

A worker discovers a mercury spill.  The prescribed response requires
know-how and capabilities scattered across the site staff: the worker
reports and cordons, the supervisor plans, the chief engineer authorises
and directs dismantling the support structure blocking access, the safety
officer contains and decontaminates, and the equipment operator moves the
containment gear.  Instead of "a series of frantic phone calls", the open
workflow system assembles and executes the response automatically from the
knowledge present on site.

The example also shows the degraded cases: a smaller goal (containment
only) and the chief engineer being unreachable.

Run with::

    python examples/emergency_response.py
"""

from __future__ import annotations

from repro.host import Community, WorkflowPhase
from repro.workloads import emergency


def respond(community: Community, goals, description: str, initiator: str = "supervisor"):
    print(f"--- {description}")
    print(f"    on site: {', '.join(community.host_ids)}")
    workspace = community.submit_problem(initiator, [emergency.SPILL_DISCOVERED], goals)
    community.run_until_allocated(workspace)
    if workspace.phase is WorkflowPhase.FAILED:
        print(f"    RESPONSE IMPOSSIBLE: {workspace.failure_reason}")
        print()
        return
    print("    response plan (task -> responsible participant):")
    for task_name in workspace.workflow.task_order():
        host = workspace.allocation_outcome.allocation.get(task_name, "?")
        print(f"        {task_name:<32} -> {host}")
    community.run_until_completed(workspace)
    sim_seconds, _ = workspace.time_to_completion()
    hours = sim_seconds / 3600
    print(f"    executed to completion in {hours:.1f} simulated hours")
    print()


def main() -> None:
    respond(
        emergency.build_site_community(),
        [emergency.ALL_CLEAR],
        "Full response: from spill discovery to the all-clear",
    )

    respond(
        emergency.build_site_community(),
        [emergency.SPILL_CONTAINED],
        "Reduced goal: just get the spill contained",
        initiator="worker",
    )

    without_engineer = tuple(
        role for role in emergency.ALL_ROLES if role.name != "chief-engineer"
    )
    respond(
        emergency.build_site_community(roles=without_engineer),
        [emergency.ALL_CLEAR],
        "What if the chief engineer cannot be reached?",
    )


if __name__ == "__main__":
    main()
