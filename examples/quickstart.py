#!/usr/bin/env python3
"""Quickstart: dynamic construction, allocation, and execution of an open workflow.

This example walks through the whole open workflow pipeline on a tiny
two-person community:

1. describe the know-how (workflow fragments) and capabilities (services)
   carried by each participant's device;
2. stand up a simulated community;
3. submit a problem specification ("given flour, I want bread") at one of
   the participants;
4. let the middleware construct a workflow from the community's combined
   knowledge, auction its tasks to capable participants, and execute it in
   a decentralized fashion;
5. print what happened.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Community, Task, WorkflowFragment
from repro.execution import CallableService


def build_community() -> Community:
    """Two participants: a miller who can make dough and a baker who can bake."""

    community = Community()

    def make_dough(task, inputs):
        print(f"    [miller] making dough from {sorted(inputs)}")
        return {"dough": "a ball of dough"}

    def bake_bread(task, inputs):
        print(f"    [baker]  baking bread from {inputs['dough']!r}")
        return {"bread": "a warm loaf"}

    community.add_host(
        "miller",
        fragments=[
            WorkflowFragment(
                [Task("make dough", ["flour", "water"], ["dough"], duration=30 * 60)],
                description="How to turn flour and water into dough.",
            )
        ],
        services=[CallableService("make dough", callable=make_dough, duration=30 * 60)],
    )
    community.add_host(
        "baker",
        fragments=[
            WorkflowFragment(
                [Task("bake bread", ["dough"], ["bread"], duration=45 * 60)],
                description="How to bake dough into bread.",
            )
        ],
        services=[CallableService("bake bread", callable=bake_bread, duration=45 * 60)],
    )
    return community


def main() -> None:
    community = build_community()

    print("Community:", ", ".join(community.host_ids))
    print("Combined knowledge:", community.total_fragments(), "fragments")
    print()
    print("The miller submits a problem: triggers={flour, water}, goal={bread}")

    workspace = community.submit_problem(
        "miller", triggers=["flour", "water"], goals=["bread"], name="bake-some-bread"
    )
    community.run_until_allocated(workspace)

    workflow = workspace.workflow
    print()
    print("Constructed workflow (from fragments contributed by both devices):")
    for task_name in workflow.task_order():
        task = workflow.task(task_name)
        print(f"    {sorted(task.inputs)} -> {task_name} -> {sorted(task.outputs)}")

    print()
    print("Task allocation decided by the auction:")
    for task_name, host in sorted(workspace.allocation_outcome.allocation.items()):
        print(f"    {task_name!r} -> {host}")

    print()
    print("Decentralized execution:")
    community.run_until_completed(workspace)

    sim_seconds, wall_seconds = workspace.time_to_completion()
    print()
    print(f"Workflow phase: {workspace.phase.value}")
    print(f"Completed tasks: {sorted(workspace.completed_tasks)}")
    print(f"Simulated time to completion: {sim_seconds / 60:.0f} minutes")
    print(f"Real processing time: {wall_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
